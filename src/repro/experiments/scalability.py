"""Scalability study: CDCS beyond the paper's 64-tile design point.

The paper evaluates a 64-tile CMP; the headline of any distributed cache
layer is how it holds up as the fabric grows (DistCache-style scaling
arguments — see PAPERS.md).  This experiment sweeps square meshes from 16
to 256 tiles at **fixed per-tile load** (one single-threaded app per tile
by default, the fully-committed regime), runs one full CDCS
reconfiguration per point, and reports what the paper's Table 3 and
Fig 11 would show at each size:

* delivered performance — aggregate IPC and IPC per tile;
* locality — mean network hops per LLC access (access-weighted);
* runtime cost — wall-clock seconds of the epoch solve, per pipeline
  step, plus the modeled runtime in Mcycles (the Table 3 accounting).

Per-tile IPC degrading slowly while solve time grows is the scaling
story; solve time exploding would bound the usable mesh size.  Each
(tiles, mix) pair is one :class:`repro.runner.Job`.  Cached records
replay the solve times measured when the job actually executed (the
placer-study convention; see docs/REPRODUCING.md).

``--strategy`` selects the :mod:`repro.sched.engine` solve strategy
(``full``/``incremental``/``partitioned``/``hierarchical``); the
per-step solve breakdown (modeled Mcycles and wall) is exported
alongside the headline table.  The sweep accepts tile counts up to
16384 (a 128x128 mesh): 1024 is where only the flat partitioned
critical path still fits the reconfiguration interval, and the 4096+
points need ``--strategy hierarchical``, whose recursive splits and
lazy geometry keep both the critical path and memory bounded (see
``solver_study`` for the warm-engine measurements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from dataclasses import replace as dc_replace

from repro.config import SystemConfig, default_config
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.model.system import AnalyticSystem
from repro.nuca.base import SchemeResult, build_problem
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sched.engine import ReconfigEngine, strategy_names
from repro.workloads.mixes import random_single_threaded_mix

#: Mesh sizes swept by default: the paper's 64-tile chip bracketed by a
#: quarter-size mesh and the 144- and 256-tile points beyond it.  1024
#: (a 32x32 mesh) is the partitioned-strategy stretch point — pass it via
#: ``--tiles`` / ``--param tiles=...`` rather than by default.
TILE_POINTS = (16, 64, 144, 256)


def mesh_width(tiles: int) -> int:
    """Side length of a square mesh with *tiles* tiles; raises on
    non-square or sub-2x2 counts (meshes here are square)."""
    width = math.isqrt(tiles)
    if width * width != tiles or tiles < 4:
        raise ValueError(
            f"tile count must be a perfect square >= 4, got {tiles}"
        )
    return width


def scaled_mesh_config(tiles: int) -> SystemConfig:
    """Table 2's chip grown (or shrunk) to *tiles* tiles.

    Memory controllers scale with tile count — ``max(2, tiles // 8)``, one
    MCU per 8 tiles, anchored at the paper's 8 MCUs for 64 tiles — so
    per-tile DRAM bandwidth is held fixed along the whole sweep (the floor
    of 2 only binds below 16 tiles).  Without this, the sweep measures
    DRAM under-provisioning (8 channels feeding 256 cores) instead of how
    co-scheduling itself scales; with it, any per-tile IPC loss is
    attributable to the cache/network layer under study.
    """
    width = mesh_width(tiles)
    config = default_config().with_mesh(width, width)
    return dc_replace(
        config,
        memory=dc_replace(config.memory, controllers=max(2, tiles // 8)),
    )


def scalability_point(
    tiles: int,
    seed: int,
    mix_id: int,
    occupancy: float = 1.0,
    strategy: str = "full",
) -> dict:
    """Job body: one mesh size, one random mix at fixed per-tile load.

    *strategy* selects the :mod:`repro.sched.engine` solve strategy for
    the single cold-start solve this point measures (``partitioned``
    splits the mesh into ~8x8 regions; ``incremental`` has no previous
    solution here, so its cold solve is the full pipeline — the
    ``solver_study`` experiment measures its warm epoch-over-epoch cost).
    """
    config = scaled_mesh_config(tiles)
    n_apps = max(1, int(round(tiles * occupancy)))
    mix = random_single_threaded_mix(n_apps, seed, mix_id)
    problem = build_problem(mix, config)
    result = ReconfigEngine(strategy).solve(problem)
    evaluation = AnalyticSystem(config).evaluate_solution(
        mix, problem, SchemeResult("CDCS", result.solution)
    )
    # Ordered reductions: records must be identical through both kernel
    # paths (and across --jobs values), so no np.sum here.
    aggregate_ipc = 0.0
    hop_num = 0.0
    hop_den = 0.0
    for thread in evaluation.threads:
        aggregate_ipc += thread.ipc
        hop_num += thread.apki * thread.mean_hops
        hop_den += thread.apki
    return {
        "tiles": tiles,
        "n_apps": n_apps,
        "strategy": strategy,
        "aggregate_ipc": aggregate_ipc,
        "ipc_per_tile": aggregate_ipc / tiles,
        "mean_hops": hop_num / hop_den if hop_den else 0.0,
        "onchip_latency": evaluation.mean_onchip_latency_per_access(),
        "dram_utilization": evaluation.dram_utilization,
        "model_mcycles": result.counter.total_cycles() / 1e6,
        # The cycles the reconfiguration interval must absorb: the critical
        # path for partitioned solves (regions run on separate cores), the
        # op-count total otherwise.
        "modeled_mcycles": result.modeled_cycles() / 1e6,
        # Per-step breakdown (Table 3 attribution), in Mcycles.
        "step_mcycles": {
            step: cycles / 1e6
            for step, cycles in result.step_cycles().items()
        },
        # Wall-clock is measurement, not simulation: excluded from the
        # equivalence contract, replayed as-measured from the cache.
        "solve_seconds": dict(result.wall_seconds),
        "solve_seconds_total": sum(result.wall_seconds.values()),
    }


def scalability_jobs(
    tiles: tuple[int, ...] = TILE_POINTS,
    n_mixes: int = 2,
    seed: int = 42,
    occupancy: float = 1.0,
    strategy: str = "full",
) -> list[Job]:
    """One :class:`Job` per (mesh size, mix) point."""
    for count in tiles:
        mesh_width(count)  # validate early, before any job runs
    if strategy not in strategy_names():
        raise ValueError(
            f"unknown solve strategy {strategy!r} "
            f"(have: {', '.join(strategy_names())})"
        )
    return [
        Job(
            fn=scalability_point,
            kwargs=dict(
                tiles=count, seed=seed, mix_id=mix_id, occupancy=occupancy,
                strategy=strategy,
            ),
            seed=seed,
            label=f"scalability-{count}t-mix{mix_id}-{strategy}",
        )
        for count in tiles
        for mix_id in range(n_mixes)
    ]


@dataclass
class ScalabilityResult:
    """Aggregated sweep outcome: records grouped by mesh size."""

    #: tiles -> one record per mix (see :func:`scalability_point`).
    records: dict[int, list[dict]]

    def tile_points(self) -> list[int]:
        return sorted(self.records)

    def mean(self, tiles: int, key: str) -> float:
        rows = self.records[tiles]
        return sum(r[key] for r in rows) / len(rows)

    def table_rows(self) -> list[tuple]:
        """Rows for the CLI/benchmark table, one per mesh size."""
        return [
            (
                f"{tiles}",
                f"{self.records[tiles][0]['n_apps']}",
                self.mean(tiles, "aggregate_ipc"),
                self.mean(tiles, "ipc_per_tile"),
                self.mean(tiles, "mean_hops"),
                self.mean(tiles, "model_mcycles"),
                1e3 * self.mean(tiles, "solve_seconds_total"),
            )
            for tiles in self.tile_points()
        ]

    def mean_step_mcycles(self, tiles: int) -> dict[str, float]:
        """Per-step modeled Mcycles, averaged over the mixes at *tiles*
        (ordered reductions, path-independent)."""
        rows = self.records[tiles]
        steps: dict[str, float] = {}
        for row in rows:
            for step, mcycles in row.get("step_mcycles", {}).items():
                steps[step] = steps.get(step, 0.0) + mcycles
        return {step: total / len(rows) for step, total in steps.items()}

    def mean_step_wall(self, tiles: int) -> dict[str, float]:
        """Per-step solve wall seconds, averaged over the mixes."""
        rows = self.records[tiles]
        steps: dict[str, float] = {}
        for row in rows:
            for step, seconds in row.get("solve_seconds", {}).items():
                steps[step] = steps.get(step, 0.0) + seconds
        return {step: total / len(rows) for step, total in steps.items()}

    def breakdown_rows(self) -> list[tuple]:
        """One row per (mesh size, pipeline step): modeled Mcycles and
        measured wall — the per-step view that shows *which* step overruns
        the reconfiguration interval, not just that the total does."""
        rows = []
        for tiles in self.tile_points():
            mcycles = self.mean_step_mcycles(tiles)
            wall = self.mean_step_wall(tiles)
            modeled = self.mean(tiles, "modeled_mcycles") if all(
                "modeled_mcycles" in r for r in self.records[tiles]
            ) else self.mean(tiles, "model_mcycles")
            for step in sorted(set(mcycles) | set(wall)):
                rows.append(
                    (
                        f"{tiles}",
                        step,
                        mcycles.get(step, 0.0),
                        1e3 * wall.get(step, 0.0),
                        modeled,
                    )
                )
        return rows


def run_scalability(
    tiles: tuple[int, ...] = TILE_POINTS,
    n_mixes: int = 2,
    seed: int = 42,
    occupancy: float = 1.0,
    strategy: str = "full",
    runner: ProcessPoolRunner | None = None,
) -> ScalabilityResult:
    """Sweep mesh sizes at fixed per-tile load."""
    jobs = scalability_jobs(
        tiles=tiles, n_mixes=n_mixes, seed=seed, occupancy=occupancy,
        strategy=strategy,
    )
    return reduce_scalability_records(run_jobs(jobs, runner))


def reduce_scalability_records(records: list[dict]) -> ScalabilityResult:
    """Group per-(tiles, mix) job payloads by mesh size — the reducer
    behind both the ``scalability`` spec and :func:`run_scalability`."""
    grouped: dict[int, list[dict]] = {}
    for record in records:
        grouped.setdefault(record["tiles"], []).append(record)
    return ScalabilityResult(grouped)


def parse_tiles(text: str) -> tuple[int, ...]:
    """Parse comma-separated square tile counts (the CLI ``--tiles`` and
    ``--param tiles=...`` grammar); raises ``argparse.ArgumentTypeError``
    with a usable message on bad input."""
    import argparse

    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise argparse.ArgumentTypeError(
            "--tiles needs at least one tile count"
        )
    values = []
    for part in parts:
        try:
            count = int(part)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--tiles expects comma-separated integers, got {part!r}"
            ) from None
        try:
            mesh_width(count)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        values.append(count)
    return tuple(values)


# -- spec registry -----------------------------------------------------------


def _scalability_jobs(params: dict) -> list[Job]:
    return scalability_jobs(
        tiles=tuple(params["tiles"]), n_mixes=params["mixes"],
        seed=params["seed"], strategy=params["strategy"],
    )


def _scalability_reduce(records: list, params: dict) -> ScalabilityResult:
    return reduce_scalability_records(records)


def _scalability_present(
    result: ScalabilityResult, params: dict
) -> RunRecord:
    table = ResultTable.make(
        title=f"Scalability: mesh-size sweep at fixed per-tile load "
              f"({params['mixes']} mixes/point, "
              f"{params['strategy']} solves)",
        headers=("tiles", "apps", "IPC", "IPC/tile", "hops",
                 "runtime Mcyc", "solve ms"),
        rows=result.table_rows(),
    )
    breakdown = ResultTable.make(
        title="Solve breakdown per step (modeled Mcycles / measured wall; "
              "'interval Mcyc' is what the reconfiguration interval must "
              "absorb — the critical path for partitioned solves)",
        headers=("tiles", "step", "step Mcyc", "step wall ms",
                 "interval Mcyc"),
        rows=result.breakdown_rows(),
    )
    return RunRecord(
        experiment="scalability", params=params, tables=(table, breakdown)
    )


register(ExperimentSpec(
    name="scalability",
    summary="16-256-tile mesh sweep at fixed per-tile load",
    figure="beyond paper",
    params=(
        Param("tiles", "tiles", TILE_POINTS,
              "comma-separated square tile counts"),
        Param("mixes", "int", 10, "random mixes per mesh size"),
        Param("seed", "int", 42, "mix RNG seed"),
        Param("strategy", "str", "full",
              "solve strategy: full, incremental, partitioned, or "
              "hierarchical"),
    ),
    build_jobs=_scalability_jobs,
    reduce=_scalability_reduce,
    present=_scalability_present,
))
