"""Reconfiguration-dynamics experiments (Figs 17 and 18).

**Fig 17** traces aggregate IPC through one reconfiguration under the
three movement protocols (instant / background invalidations / bulk
invalidations) on the trace-driven simulator.

**Fig 18** sweeps the reconfiguration period: each protocol's per-
reconfiguration penalty (instruction slots lost relative to instant moves,
measured on the trace) is amortized over the period and applied to the
steady-state CDCS weighted speedup from the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, small_test_config
from repro.experiments.results import ResultSeries, ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.nuca.base import build_problem
from repro.nuca.jigsaw import Jigsaw
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.sim.engine import TraceSimulator
from repro.sim.reconfig import (
    BackgroundInvalidations,
    BulkInvalidations,
    InstantMoves,
    MovementProtocol,
)
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sim.setup import build_trace_simulation, scale_solution
from repro.workloads.mixes import Mix, make_mix

PROTOCOLS = ("instant", "background-inv", "bulk-inv")


def default_trace_mix() -> Mix:
    """A small mixed workload exercising moves: fitting + streaming +
    friendly + one multithreaded app (13 threads on a 4x4 chip)."""
    return make_mix(["omnet", "milc", "gcc", "astar", "bzip2", "ilbdc"])


def make_protocol(name: str) -> MovementProtocol:
    if name == "instant":
        return InstantMoves()
    if name == "background-inv":
        return BackgroundInvalidations()
    if name == "bulk-inv":
        return BulkInvalidations()
    raise ValueError(f"unknown protocol {name!r}")


@dataclass
class ReconfigTrace:
    protocol: str
    #: (cycle, aggregate IPC) pairs, Fig 17's series.
    trace: list[tuple[float, float]]
    ipc_before: float
    ipc_during: float
    ipc_after: float
    demand_moves: int
    background_invalidations: int
    bulk_invalidations: int
    instructions: float


def _build_sim(
    config: SystemConfig,
    mix: Mix,
    capacity_scale: int,
    seed: int,
) -> tuple[TraceSimulator, object, object]:
    problem = build_problem(mix, config)
    jig = Jigsaw("random", seed)
    cores = jig.thread_cores(problem)
    initial = jig.run(problem).solution
    improved = reconfigure(
        problem,
        ReconfigPolicy(True, False, True),
        external_thread_cores=cores,
    ).solution
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=capacity_scale, seed=seed
    )
    return sim, initial, improved


def run_reconfig_trace(
    protocol_name: str,
    config: SystemConfig | None = None,
    mix: Mix | None = None,
    reconfig_at: float = 400_000.0,
    horizon: float = 1_000_000.0,
    capacity_scale: int = 16,
    seed: int = 5,
) -> ReconfigTrace:
    """Fig 17: one protocol's IPC trace through a reconfiguration."""
    config = config or small_test_config(4, 4)
    mix = mix or default_trace_mix()
    sim, _, improved = _build_sim(config, mix, capacity_scale, seed)
    protocol = make_protocol(protocol_name)
    sim.schedule_reconfiguration(
        reconfig_at, scale_solution(improved, capacity_scale), protocol
    )
    sim.run_until(horizon)
    stats = sim.llc.stats
    window = 150_000.0
    return ReconfigTrace(
        protocol=protocol_name,
        trace=sim.ipc_trace.trace(),
        ipc_before=sim.aggregate_ipc(reconfig_at - window, reconfig_at),
        ipc_during=sim.aggregate_ipc(reconfig_at, reconfig_at + window),
        ipc_after=sim.aggregate_ipc(horizon - window, horizon),
        demand_moves=stats.demand_moves,
        background_invalidations=stats.background_invalidations,
        bulk_invalidations=stats.bulk_invalidations,
        instructions=sum(t.instructions for t in sim.threads),
    )


def reconfig_trace_jobs(
    config: SystemConfig | None = None,
    mix: Mix | None = None,
    reconfig_at: float = 400_000.0,
    horizon: float = 1_000_000.0,
    capacity_scale: int = 16,
    seed: int = 5,
    protocols: tuple[str, ...] = PROTOCOLS,
) -> list[Job]:
    """One :class:`Job` per movement protocol (the Fig 17 fan-out).

    The trace simulations are independent across protocols, so they are
    the natural parallel/cacheable unit of Figs 17 and 18.
    """
    return [
        Job(
            fn=run_reconfig_trace,
            kwargs=dict(
                protocol_name=name,
                config=config,
                mix=mix,
                reconfig_at=reconfig_at,
                horizon=horizon,
                capacity_scale=capacity_scale,
                seed=seed,
            ),
            seed=seed,
            label=f"reconfig-trace-{name}",
        )
        for name in protocols
    ]


def reconfiguration_penalty_cycles(
    traces: dict[str, ReconfigTrace]
) -> dict[str, float]:
    """Per-reconfiguration penalty of each protocol vs instant moves,
    expressed as equivalent lost full-throughput cycles."""
    instant = traces["instant"]
    out = {}
    for name, trace in traces.items():
        lost_instr = instant.instructions - trace.instructions
        ipc = max(instant.ipc_after, 1e-9)
        out[name] = max(lost_instr / ipc, 0.0)
    return out


@dataclass
class PeriodSweepResult:
    #: period cycles -> protocol -> weighted speedup over S-NUCA.
    speedups: dict[int, dict[str, float]]
    penalties: dict[str, float]
    steady_ws: float


def run_period_sweep(
    steady_ws: float,
    periods: tuple[int, ...] = (10_000_000, 25_000_000, 50_000_000, 100_000_000),
    config: SystemConfig | None = None,
    mix: Mix | None = None,
    capacity_scale: int = 16,
    seed: int = 5,
    runner: ProcessPoolRunner | None = None,
) -> PeriodSweepResult:
    """Fig 18: WS vs reconfiguration period for the three protocols.

    *steady_ws* is the CDCS weighted speedup with instant moves (from the
    analytic model, e.g. ~1.46 at 64 apps); each protocol's measured
    per-reconfiguration penalty is amortized over the period.
    """
    jobs = reconfig_trace_jobs(
        config=config, mix=mix, capacity_scale=capacity_scale, seed=seed
    )
    traces = dict(zip(PROTOCOLS, run_jobs(jobs, runner)))
    return period_sweep_from_traces(traces, steady_ws, periods)


def period_sweep_from_traces(
    traces: dict[str, ReconfigTrace],
    steady_ws: float,
    periods: tuple[int, ...] = (
        10_000_000, 25_000_000, 50_000_000, 100_000_000
    ),
) -> PeriodSweepResult:
    """Amortize measured per-reconfiguration penalties over *periods* —
    the reducer behind both the ``fig18`` spec and
    :func:`run_period_sweep`."""
    penalties = reconfiguration_penalty_cycles(traces)
    speedups: dict[int, dict[str, float]] = {}
    for period in periods:
        speedups[period] = {
            name: steady_ws * (1.0 - min(penalties[name] / period, 0.9))
            for name in PROTOCOLS
        }
    return PeriodSweepResult(speedups, penalties, steady_ws)


# -- spec registry -----------------------------------------------------------


def _trace_jobs(params: dict) -> list[Job]:
    return reconfig_trace_jobs(capacity_scale=16, seed=params["seed"])


def _traces_reduce(records: list, params: dict) -> dict[str, ReconfigTrace]:
    return dict(zip(PROTOCOLS, records))


def _trace_series(trace: ReconfigTrace) -> ResultSeries:
    points = [
        (t / 1e6, v)
        for t, v in trace.trace[:: max(len(trace.trace) // 15, 1)]
    ]
    return ResultSeries.make(
        f"{trace.protocol} (Mcycle, IPC)", points, fmt="{:.2f}"
    )


def _fig17_present(
    result: dict[str, ReconfigTrace], params: dict
) -> RunRecord:
    return RunRecord(
        experiment="fig17",
        params=params,
        series=tuple(_trace_series(result[name]) for name in PROTOCOLS),
    )


register(ExperimentSpec(
    name="fig17",
    summary="aggregate IPC through one reconfiguration, per protocol",
    figure="Fig 17",
    params=(Param("seed", "int", 42, "trace-simulation RNG seed"),),
    build_jobs=_trace_jobs,
    reduce=_traces_reduce,
    present=_fig17_present,
))


def _fig18_reduce(records: list, params: dict) -> PeriodSweepResult:
    return period_sweep_from_traces(
        dict(zip(PROTOCOLS, records)), params["steady_ws"]
    )


def _fig18_present(result: PeriodSweepResult, params: dict) -> RunRecord:
    table = ResultTable.make(
        title=f"Fig 18: WS vs reconfiguration period "
              f"(steady WS {result.steady_ws:g})",
        headers=("period (Mcycles)", *PROTOCOLS),
        rows=[
            (f"{period / 1e6:g}", *(by_proto[p] for p in PROTOCOLS))
            for period, by_proto in sorted(result.speedups.items())
        ],
    )
    return RunRecord(experiment="fig18", params=params, tables=(table,))


register(ExperimentSpec(
    name="fig18",
    summary="weighted speedup vs reconfiguration period, per protocol",
    figure="Fig 18",
    params=(
        Param("steady_ws", "float", 1.46,
              "steady-state CDCS WS with instant moves"),
        Param("seed", "int", 42, "trace-simulation RNG seed"),
    ),
    build_jobs=_trace_jobs,
    reduce=_fig18_reduce,
    present=_fig18_present,
))
