"""The Sec II-B case study: Table 1 and the Fig 1 chip maps.

36-tile chip, omnet x6 + milc x14 + ilbdc x2(8t); compares R-NUCA,
Jigsaw+C, Jigsaw+R and CDCS against S-NUCA, and renders thread/data maps
like Fig 1's tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, case_study_config
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.model.metrics import per_app_speedups, weighted_speedup
from repro.model.system import AnalyticSystem, MixEvaluation
from repro.nuca import SCHEMES, standard_schemes
from repro.nuca.base import build_problem
from repro.runner import Job
from repro.sched.problem import PlacementSolution
from repro.workloads.mixes import Mix, case_study_mix


@dataclass
class CaseStudyResult:
    mix: Mix
    #: scheme -> per-app speedups over S-NUCA ({'omnet': ..., ...}).
    app_speedups: dict[str, dict[str, float]]
    #: scheme -> weighted speedup over S-NUCA (alone-normalized).
    weighted: dict[str, float]
    evaluations: dict[str, MixEvaluation]
    solutions: dict[str, PlacementSolution]
    config: SystemConfig

    def table1(self) -> list[tuple[str, float, float, float, float]]:
        """Rows in Table 1's layout: scheme, omnet, ilbdc, milc, WS."""
        rows = []
        for scheme in SCHEMES:
            apps = self.app_speedups[scheme]
            rows.append(
                (
                    scheme,
                    apps["omnet"],
                    apps["ilbdc"],
                    apps["milc"],
                    self.weighted[scheme],
                )
            )
        return rows


def run_case_study(
    config: SystemConfig | None = None,
    mix: Mix | None = None,
    seed: int = 1,
) -> CaseStudyResult:
    config = config or case_study_config()
    mix = mix or case_study_mix()
    system = AnalyticSystem(config)
    alone = system.alone_performance(mix)
    problem = build_problem(mix, config)
    evaluations: dict[str, MixEvaluation] = {}
    solutions: dict[str, PlacementSolution] = {}
    for scheme in standard_schemes(seed):
        outcome = scheme.run(problem)
        evaluations[scheme.name] = system.evaluate_solution(
            mix, problem, outcome
        )
        solutions[scheme.name] = outcome.solution
    baseline = evaluations["S-NUCA"]
    app_speedups = {}
    weighted = {}
    for name, evaluation in evaluations.items():
        if name == "S-NUCA":
            continue
        app_speedups[name] = per_app_speedups(evaluation, baseline)
        weighted[name] = weighted_speedup(evaluation, baseline, alone)
    return CaseStudyResult(
        mix, app_speedups, weighted, evaluations, solutions, config
    )


def render_chip_map(
    result: CaseStudyResult, scheme: str
) -> str:
    """ASCII rendition of a Fig 1 panel: per tile, the thread running there
    and the process owning the most bytes in the tile's bank."""
    config = result.config
    solution = result.solutions[scheme]
    evaluation = result.evaluations[scheme]
    width = config.mesh_width
    label_of_process = {}
    counters: dict[str, int] = {}
    for proc in result.mix.processes:
        letter = proc.profile.name[0].upper()
        counters[letter] = counters.get(letter, 0) + 1
        label_of_process[proc.process_id] = f"{letter}{counters[letter]}"

    thread_at: dict[int, str] = {}
    for t in evaluation.threads:
        thread_at[t.core] = label_of_process[t.process_id]
    # Dominant data owner per bank.
    process_of_vc = {}
    from repro.nuca.base import GLOBAL_VC_ID

    for proc in result.mix.processes:
        for tid in proc.thread_ids:
            process_of_vc[tid] = proc.process_id
        from repro.nuca.base import process_vc_id

        process_of_vc[process_vc_id(proc.process_id)] = proc.process_id
    bank_owner_bytes: dict[int, dict[int, float]] = {}
    for vc_id, per_bank in solution.vc_allocation.items():
        pid = process_of_vc.get(vc_id)
        if pid is None or vc_id == GLOBAL_VC_ID:
            continue
        for bank, amount in per_bank.items():
            bank_owner_bytes.setdefault(bank, {})[pid] = (
                bank_owner_bytes.setdefault(bank, {}).get(pid, 0.0) + amount
            )
    lines = [f"{scheme}: thread/dominant-data per tile"]
    for y in range(config.mesh_height):
        row = []
        for x in range(width):
            tile = y * width + x
            thread = thread_at.get(tile, "--")
            owners = bank_owner_bytes.get(tile, {})
            data = (
                label_of_process[max(owners, key=owners.get)] if owners else "--"
            )
            row.append(f"{thread:>3}/{data:<3}")
        lines.append(" ".join(row))
    return "\n".join(lines)


# -- spec registry -----------------------------------------------------------


def _case_study_rows(seed: int) -> list[tuple[str, float, float, float, float]]:
    """Job body: Table 1's rows as a plain, picklable payload."""
    return run_case_study(seed=seed).table1()


def _table1_jobs(params: dict) -> list[Job]:
    return [Job(fn=_case_study_rows, kwargs=dict(seed=params["seed"]),
                seed=params["seed"], label="table1-case-study")]


def _table1_reduce(records: list, params: dict) -> list[tuple]:
    return records[0]


def _table1_present(result: list[tuple], params: dict) -> RunRecord:
    table = ResultTable.make(
        title="Table 1: case-study speedups over S-NUCA",
        headers=("Scheme", "omnet", "ilbdc", "milc", "WS"),
        rows=result,
    )
    return RunRecord(experiment="table1", params=params, tables=(table,))


register(ExperimentSpec(
    name="table1",
    summary="the 36-tile Sec II-B case study (omnet + milc + ilbdc)",
    figure="Table 1",
    params=(Param("seed", "int", 1, "scheme RNG seed"),),
    build_jobs=_table1_jobs,
    reduce=_table1_reduce,
    present=_table1_present,
))
