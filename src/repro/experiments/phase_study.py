"""Phase study: reconfiguration period vs workload phase length.

The paper's runtime re-places data and threads every 25 ms because demand
*moves*; this experiment makes it move.  Mixes of phased apps
(:func:`repro.workloads.mixes.random_phased_mix`) run on the epoch engine
under two runtimes:

* **adaptive** — every epoch re-reads the active phase's miss curves
  (solving :meth:`~repro.sim.engine.EpochEngine.current_problem`, the
  snapshot built from what the GMONs would report this interval; see also
  :func:`repro.sched.reconfigure.reconfigure_epoch` for the engine-less
  form) and re-solves, the paper's periodic pipeline;
* **stale** — one reconfiguration at time zero, never updated (the
  period -> infinity limit).

Sweeping the reconfiguration period against the generator's phase lengths
gives the Fig 18-shaped interaction: short periods track phases closely
and the adaptive/stale IPC ratio is largest; periods longer than a phase
leave placements stale for most of each phase and the gain collapses
toward 1.  Per-period epoch IPC traces (Fig 17-shaped, at epoch
granularity) come along for free from the engine's
:meth:`~repro.sim.engine.EpochTrace.aggregate_ipc_trace`.

Each (mix, period) pair is one :class:`repro.runner.Job`, so the study
parallelizes over ``--jobs`` and memoizes per-point results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, small_test_config
from repro.experiments.results import ResultSeries, ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.nuca.base import build_problem
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.sim.engine import EpochEngine
from repro.workloads.mixes import random_phased_mix

#: Reconfiguration periods swept, in cycles: 1/4x, 1x, and 4x the paper's
#: 50 Mcycle (25 ms) interval.  Against the generator's 150M–600M
#: instruction phases, the short period re-solves several times per phase
#: while the long one straddles phase changes.
PERIODS = (12_500_000, 50_000_000, 200_000_000)

#: Default simulated horizon in cycles (enough for every process to move
#: through multiple phases at any swept period).
DEFAULT_HORIZON = 800_000_000.0


def _mean_aggregate_ipc(engine: EpochEngine, horizon: float) -> float:
    """Chip instructions retired per cycle over the whole run (ordered
    reduction, so the value is bitwise path-independent)."""
    total = 0.0
    for value in engine.instructions.tolist():
        total += value
    return total / horizon


def phase_point(
    config: SystemConfig,
    n_apps: int,
    seed: int,
    mix_id: int,
    period: float,
    horizon: float = DEFAULT_HORIZON,
) -> dict:
    """Job body: one phased mix under one reconfiguration period.

    Runs the adaptive and stale arms over the same phased mix and returns
    a plain, picklable record: both mean aggregate IPCs, the adaptive
    arm's epoch IPC trace, and how many epochs saw a phase change.
    """
    mix = random_phased_mix(n_apps, seed, mix_id)
    policy = ReconfigPolicy.cdcs()
    n_epochs = int(horizon // period)

    # The engine's phase snapshot IS the problem a boundary reconfiguration
    # solves (active curves = what the GMONs report this interval), and the
    # engine caches it per phase tuple — so solve it directly instead of
    # rebuilding it through reconfigure_epoch each epoch.
    adaptive = EpochEngine(mix, build_problem(mix, config))
    previous_phases: dict[int, int] | None = None
    phase_changes = 0
    for _ in range(n_epochs):
        result = reconfigure(adaptive.current_problem(), policy)
        epoch = adaptive.run_epoch(result.solution, period)
        if previous_phases is not None and epoch.phases != previous_phases:
            phase_changes += 1
        previous_phases = epoch.phases

    stale = EpochEngine(mix, build_problem(mix, config))
    frozen = reconfigure(stale.current_problem(), policy)
    for _ in range(n_epochs):
        stale.run_epoch(frozen.solution, period)

    span = n_epochs * period
    return {
        "mix_id": mix_id,
        "period": float(period),
        "epochs": n_epochs,
        "phase_changes": phase_changes,
        "adaptive_ipc": _mean_aggregate_ipc(adaptive, span),
        "stale_ipc": _mean_aggregate_ipc(stale, span),
        "trace": adaptive.trace.aggregate_ipc_trace(),
    }


def phase_study_jobs(
    config: SystemConfig,
    n_mixes: int = 4,
    seed: int = 42,
    n_apps: int = 6,
    periods: tuple[int, ...] = PERIODS,
    horizon: float = DEFAULT_HORIZON,
) -> list[Job]:
    """One :class:`Job` per (mix, reconfiguration period) point."""
    return [
        Job(
            fn=phase_point,
            kwargs=dict(
                config=config,
                n_apps=n_apps,
                seed=seed,
                mix_id=mix_id,
                period=float(period),
                horizon=horizon,
            ),
            seed=seed,
            label=f"phase-mix{mix_id}-period{period}",
        )
        for period in periods
        for mix_id in range(n_mixes)
    ]


@dataclass
class PhaseStudyResult:
    """Aggregated phase-study outcome."""

    #: period -> one record per mix (see :func:`phase_point`).
    records: dict[float, list[dict]]

    def periods(self) -> list[float]:
        return sorted(self.records)

    def mean_gain(self, period: float) -> float:
        """Mean adaptive/stale IPC ratio at this period — how much the
        periodic runtime is worth against these phases."""
        rows = self.records[period]
        return sum(r["adaptive_ipc"] / r["stale_ipc"] for r in rows) / len(rows)

    def mean_phase_changes(self, period: float) -> float:
        rows = self.records[period]
        return sum(r["phase_changes"] for r in rows) / len(rows)

    def trace(self, period: float, mix_id: int = 0) -> list[tuple[float, float]]:
        """The adaptive arm's (cycle, aggregate IPC) epoch trace."""
        for record in self.records[period]:
            if record["mix_id"] == mix_id:
                return record["trace"]
        raise KeyError(f"no record for mix {mix_id} at period {period}")


def run_phase_study(
    config: SystemConfig | None = None,
    n_mixes: int = 4,
    seed: int = 42,
    n_apps: int = 6,
    periods: tuple[int, ...] = PERIODS,
    horizon: float = DEFAULT_HORIZON,
    runner: ProcessPoolRunner | None = None,
) -> PhaseStudyResult:
    """Sweep reconfiguration periods over phased mixes.

    Defaults run on the 4x4 test chip: the dynamics under study live in
    the interaction between period and phase length, not in chip size, and
    a small mesh keeps the per-epoch solves fast.
    """
    config = config or small_test_config(4, 4)
    jobs = phase_study_jobs(
        config, n_mixes=n_mixes, seed=seed, n_apps=n_apps,
        periods=periods, horizon=horizon,
    )
    return reduce_phase_records(run_jobs(jobs, runner))


def reduce_phase_records(records: list[dict]) -> PhaseStudyResult:
    """Group per-(mix, period) job payloads by period — the reducer
    behind both the ``phase_study`` spec and :func:`run_phase_study`."""
    grouped: dict[float, list[dict]] = {}
    for record in records:
        grouped.setdefault(record["period"], []).append(record)
    return PhaseStudyResult(grouped)


# -- spec registry -----------------------------------------------------------


def _phase_jobs(params: dict) -> list[Job]:
    return phase_study_jobs(
        small_test_config(4, 4), n_mixes=params["mixes"],
        seed=params["seed"],
    )


def _phase_reduce(records: list, params: dict) -> PhaseStudyResult:
    return reduce_phase_records(records)


def _phase_present(result: PhaseStudyResult, params: dict) -> RunRecord:
    table = ResultTable.make(
        title=f"Phase study: reconfiguration period vs phase length "
              f"({params['mixes']} phased mixes)",
        headers=("period (cycles)", "adaptive/stale IPC", "phase changes"),
        rows=[
            (f"{period / 1e6:g}M", result.mean_gain(period),
             result.mean_phase_changes(period))
            for period in result.periods()
        ],
    )
    period = result.periods()[0]
    trace = result.trace(period, mix_id=0)
    series = ResultSeries.make(
        f"mix 0 epoch IPC at {period / 1e6:g}M period (Mcycle, IPC)",
        [(t / 1e6, v) for t, v in trace[:: max(len(trace) // 15, 1)]],
        fmt="{:.2f}",
    )
    return RunRecord(
        experiment="phase_study", params=params,
        tables=(table,), series=(series,),
    )


register(ExperimentSpec(
    name="phase_study",
    summary="adaptive vs frozen placement over phased workloads",
    figure="beyond paper",
    params=(
        Param("mixes", "int", 10, "phased mixes per period"),
        Param("seed", "int", 42, "mix RNG seed"),
    ),
    build_jobs=_phase_jobs,
    reduce=_phase_reduce,
    present=_phase_present,
))
