"""GMON vs UMON study (Sec IV-G / VI-C).

Feeds synthetic address streams (with known ground-truth miss curves) to
monitors of different geometries and reports (a) curve accuracy and (b)
the capacity-allocation quality when the runtime allocates from monitored
curves instead of true ones.  The paper's claims to reproduce:

* a conventional UMON needs ~512 ways for 64 KB grain over a 32 MB LLC;
* 64-way GMONs match 256-way UMONs; 64-way UMONs lose ~3%;
* huge (1K-way) UMONs beat 64-way GMONs by only ~1%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.miss_curve import MissCurve
from repro.cache.monitor import GMon, UMon
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.workloads.generator import StackDistanceStream
from repro.workloads.profiles import AppProfile


@dataclass
class MonitorAccuracy:
    monitor_kind: str
    ways: int
    #: Mean absolute miss-ratio error against ground truth, over the
    #: capacity range [0, coverage].
    mean_abs_error: float
    #: Error at small sizes only (the first 1/8th) — where fine resolution
    #: matters for allocation.
    small_size_error: float


def monitored_curve(
    monitor: UMon, stream: StackDistanceStream, accesses: int
) -> MissCurve:
    """Drive *accesses* addresses through *monitor* and extract its curve,
    normalized to miss ratio (misses per access)."""
    for _ in range(accesses):
        monitor.access(stream.next_address())
    curve = monitor.miss_curve()
    total = max(curve.values[0], 1e-9)
    return MissCurve(curve.sizes, curve.values / total)


def curve_error(
    monitored: MissCurve, truth: MissCurve, truth_apki: float, max_size: float,
    points: int = 64,
) -> tuple[float, float]:
    """(overall, small-size) mean absolute miss-ratio error."""
    sizes = np.linspace(0.0, max_size, points + 1)[1:]
    true_ratio = np.minimum(np.asarray(truth(sizes)) / truth_apki, 1.0)
    mon_ratio = np.asarray(monitored(sizes))
    err = np.abs(true_ratio - mon_ratio)
    small = max(points // 8, 1)
    return float(err.mean()), float(err[:small].mean())


#: The geometries every comparison measures: (kind, ways).
GEOMETRIES: tuple[tuple[str, int], ...] = (
    ("UMON", 64),
    ("UMON", 256),
    ("GMON", 64),
)


def _monitor_point(
    profile: AppProfile,
    llc_bytes: float,
    kind: str,
    ways: int,
    accesses: int,
    footprint_scale: int,
    seed: int,
) -> MonitorAccuracy:
    """Job body: drive one monitor geometry over one app's stream."""
    scale = footprint_scale
    curve = profile.private_curve.scaled_sizes(1.0 / scale)
    coverage = llc_bytes / scale
    first_way = coverage / 512  # the 64 KB-grain requirement, scaled
    if kind == "GMON":
        monitor: UMon = GMon(first_way, coverage, ways=ways, seed=7)
    else:
        monitor = UMon(coverage, ways=ways, seed=7)
    stream = StackDistanceStream(curve, apki=profile.llc_apki, seed=seed)
    mon_curve = monitored_curve(monitor, stream, accesses)
    overall, small = curve_error(mon_curve, curve, profile.llc_apki, coverage)
    return MonitorAccuracy(
        monitor_kind=kind,
        ways=monitor.ways,
        mean_abs_error=overall,
        small_size_error=small,
    )


def monitor_jobs(
    profile: AppProfile,
    llc_bytes: float,
    accesses: int = 60_000,
    footprint_scale: int = 16,
    seed: int = 3,
) -> list[Job]:
    """One :class:`Job` per monitor geometry in :data:`GEOMETRIES`."""
    return [
        Job(
            fn=_monitor_point,
            kwargs=dict(
                profile=profile,
                llc_bytes=llc_bytes,
                kind=kind,
                ways=ways,
                accesses=accesses,
                footprint_scale=footprint_scale,
                seed=seed,
            ),
            seed=seed,
            label=f"monitor-{profile.name}-{kind}-{ways}",
        )
        for kind, ways in GEOMETRIES
    ]


def run_monitor_comparison(
    profile: AppProfile,
    llc_bytes: float,
    accesses: int = 60_000,
    footprint_scale: int = 16,
    seed: int = 3,
    runner: ProcessPoolRunner | None = None,
) -> list[MonitorAccuracy]:
    """Compare monitor geometries on one app's (scaled) stream."""
    jobs = monitor_jobs(profile, llc_bytes, accesses, footprint_scale, seed)
    return run_jobs(jobs, runner)


# -- spec registry -----------------------------------------------------------


def _gmon_jobs(params: dict) -> list[Job]:
    from repro.util.units import mb
    from repro.workloads.profiles import get_profile

    return monitor_jobs(
        get_profile(params["app"]), mb(params["llc_mb"]),
        seed=params["seed"],
    )


def _gmon_reduce(records: list, params: dict) -> list[MonitorAccuracy]:
    return records


def _gmon_present(result: list[MonitorAccuracy], params: dict) -> RunRecord:
    table = ResultTable.make(
        title=f"GMON vs UMON curve accuracy ({params['app']}, "
              f"{params['llc_mb']} MB LLC)",
        headers=("monitor", "MAE", "small-size MAE"),
        rows=[
            (f"{acc.monitor_kind}-{acc.ways}", acc.mean_abs_error,
             acc.small_size_error)
            for acc in result
        ],
    )
    return RunRecord(experiment="gmon", params=params, tables=(table,))


register(ExperimentSpec(
    name="gmon",
    summary="GMON vs UMON monitor-geometry accuracy",
    figure="Sec IV-G/VI-C",
    params=(
        Param("app", "str", "astar", "profile whose stream is monitored"),
        Param("llc_mb", "int", 32, "LLC capacity in MB"),
        Param("seed", "int", 3, "address-stream RNG seed"),
    ),
    build_jobs=_gmon_jobs,
    reduce=_gmon_reduce,
    present=_gmon_present,
))
