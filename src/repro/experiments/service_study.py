"""Service load study: the control plane under concurrent tenants.

The solver study priced one warm engine against the reconfiguration
interval; this study prices the *service* around it — N chips streaming
telemetry through one :class:`~repro.service.server.CoSchedService`
concurrently, per :mod:`repro.service.load`.  Each (strategy, dynamism)
arm is one :class:`repro.runner.Job` running a whole load session, and
the headline numbers are serving-shaped: requests/sec and p50/p99
placement latency, with degradations and typed rejections broken out.

Determinism caveat: placements and reply *counts* are seeded and exact;
requests/sec and latency percentiles are wall clock and vary run to run
(same convention as ``solve_seconds`` elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.solver_study import parse_names
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sched.engine import strategy_names

#: Default strategy arms for the load sweep.
STRATEGY_SWEEP = ("full", "incremental")

#: Default dynamism arms (see :class:`repro.service.load.LoadSpec`).
DYNAMISM_SWEEP = ("stationary", "phased")


def service_load_point(
    chips: int,
    epochs: int,
    tiles: int,
    strategy: str,
    dynamism: str,
    workers: int,
    queue_limit: int,
    seed: int,
) -> dict:
    """Job body: one full load session; returns the report as a dict."""
    # Lazy: keeps experiments importable if the service layer is being
    # bisected, and mirrors service.load's lazy import back this way.
    from repro.service.load import LoadSpec, run_load

    spec = LoadSpec(
        chips=chips, epochs=epochs, tiles=tiles, strategy=strategy,
        dynamism=dynamism, workers=workers, queue_limit=queue_limit,
        seed=seed,
    )
    return run_load(spec).to_dict()


def service_study_jobs(
    chips: int = 4,
    epochs: int = 6,
    tiles: int = 16,
    strategies: tuple[str, ...] = STRATEGY_SWEEP,
    dynamism: tuple[str, ...] = DYNAMISM_SWEEP,
    workers: int = 2,
    queue_limit: int = 32,
    seed: int = 42,
) -> list[Job]:
    """One :class:`Job` (= one load session) per (strategy, dynamism)."""
    for name in strategies:
        if name not in strategy_names():
            raise ValueError(
                f"unknown solve strategy {name!r} "
                f"(have: {', '.join(strategy_names())})"
            )
    return [
        Job(
            fn=service_load_point,
            kwargs=dict(
                chips=chips, epochs=epochs, tiles=tiles,
                strategy=strategy, dynamism=arm, workers=workers,
                queue_limit=queue_limit, seed=seed,
            ),
            seed=seed,
            label=f"service-{chips}c-{tiles}t-{strategy}-{arm}",
        )
        for strategy in strategies
        for arm in dynamism
    ]


@dataclass
class ServiceStudyResult:
    """Load reports keyed by (strategy, dynamism)."""

    #: (strategy, dynamism) -> the session's report dict.
    records: dict[tuple[str, str], dict]

    def points(self) -> list[tuple[str, str]]:
        return sorted(self.records)

    def report(self, point: tuple[str, str]):
        from repro.service.load import LoadReport

        return LoadReport.from_dict(self.records[point])

    def table_rows(self) -> list[tuple]:
        rows = []
        for strategy, arm in self.points():
            record = self.records[(strategy, arm)]
            rows.append((
                strategy,
                arm,
                record["spec"]["chips"],
                record["requests"],
                record["ok"],
                record["degraded"],
                sum(record["rejected"].values()),
                round(record["requests_per_sec"], 1),
                round(record["p50_latency_ms"], 2),
                round(record["p99_latency_ms"], 2),
            ))
        return rows


def reduce_service_records(records: list[dict]) -> ServiceStudyResult:
    grouped: dict[tuple[str, str], dict] = {}
    for record in records:
        key = (record["spec"]["strategy"], record["spec"]["dynamism"])
        grouped[key] = record
    return ServiceStudyResult(grouped)


def run_service_study(
    chips: int = 4,
    epochs: int = 6,
    tiles: int = 16,
    strategies: tuple[str, ...] = STRATEGY_SWEEP,
    dynamism: tuple[str, ...] = DYNAMISM_SWEEP,
    workers: int = 2,
    queue_limit: int = 32,
    seed: int = 42,
    runner: ProcessPoolRunner | None = None,
) -> ServiceStudyResult:
    """Sweep the control plane across strategy x dynamism arms."""
    jobs = service_study_jobs(
        chips=chips, epochs=epochs, tiles=tiles, strategies=strategies,
        dynamism=dynamism, workers=workers, queue_limit=queue_limit,
        seed=seed,
    )
    return reduce_service_records(run_jobs(jobs, runner))


# -- spec registry -----------------------------------------------------------


def _service_jobs(params: dict) -> list[Job]:
    return service_study_jobs(
        chips=params["chips"],
        epochs=params["epochs"],
        tiles=params["tiles"],
        strategies=parse_names(
            params["strategies"], tuple(strategy_names()), "strategy"
        ),
        dynamism=parse_names(params["dynamism"], DYNAMISM_SWEEP, "dynamism"),
        workers=params["workers"],
        queue_limit=params["queue_limit"],
        seed=params["seed"],
    )


def _service_reduce(records: list, params: dict) -> ServiceStudyResult:
    return reduce_service_records(records)


def _service_present(result: ServiceStudyResult, params: dict) -> RunRecord:
    table = ResultTable.make(
        title=f"Service load: {params['chips']} chips x "
              f"{params['epochs']} epochs on {params['tiles']} tiles "
              f"({params['workers']} workers, "
              f"queue {params['queue_limit']})",
        headers=("strategy", "dynamism", "chips", "requests", "ok",
                 "degraded", "rejected", "req/s", "p50 ms", "p99 ms"),
        rows=result.table_rows(),
    )
    return RunRecord(
        experiment="service_load", params=params, tables=(table,),
    )


register(ExperimentSpec(
    name="service_load",
    summary="async control plane under concurrent tenant load",
    figure="beyond paper",
    params=(
        Param("chips", "int", 4, "concurrent tenant chips"),
        Param("epochs", "int", 6, "reconfigurations per chip"),
        Param("tiles", "int", 16, "square tile count per chip"),
        Param("strategies", "str", ",".join(STRATEGY_SWEEP),
              "comma-separated solve strategies to sweep"),
        Param("dynamism", "str", ",".join(DYNAMISM_SWEEP),
              "comma-separated workload arms (stationary, phased)"),
        Param("workers", "int", 2, "service worker tasks / solve threads"),
        Param("queue_limit", "int", 32, "bounded request-queue depth"),
        Param("seed", "int", 42, "fleet RNG seed"),
    ),
    build_jobs=_service_jobs,
    reduce=_service_reduce,
    present=_service_present,
))
