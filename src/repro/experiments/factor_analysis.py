"""Factor analysis of CDCS's techniques (Fig 12).

Starting from Jigsaw+R, enable latency-aware allocation (+L), thread
placement (+T), and trade-refined data placement (+D) individually and
together (+LTD = CDCS); run at 64 apps (capacity-scarce: T and D dominate)
and 4 apps (capacity-plentiful: L dominates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.experiments.sweeps import (
    SweepResult,
    evaluate_mix,
    merge_mix_record,
    mix_record,
)
from repro.model.system import AnalyticSystem
from repro.nuca.cdcs import factor_variant
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.workloads.mixes import random_single_threaded_mix

VARIANTS: list[tuple[str, tuple[bool, bool, bool]]] = [
    ("Jigsaw+R", (False, False, False)),
    ("+L", (True, False, False)),
    ("+T", (False, True, False)),
    ("+D", (False, False, True)),
    ("+LTD", (True, True, True)),
]


@dataclass
class FactorResult:
    n_apps: int
    sweep: SweepResult

    def gmeans(self) -> dict[str, float]:
        out = {}
        for label, _ in VARIANTS:
            name = _variant_name(label)
            out[label] = self.sweep.gmean_speedup(name)
        return out


def _variant_name(label: str) -> str:
    if label == "Jigsaw+R":
        return "Jigsaw+Rbase"
    return f"Jigsaw+R{label}"


def _factor_point(
    config: SystemConfig, n_apps: int, seed: int, mix_id: int
) -> dict:
    """Job body: evaluate all Fig 12 variants on one random mix."""
    mix = random_single_threaded_mix(n_apps, seed, mix_id)
    schemes = []
    for label, (lat, thr, dat) in VARIANTS:
        scheme = factor_variant(lat, thr, dat, seed=mix_id)
        scheme.name = _variant_name(label)
        schemes.append(scheme)
    single = SweepResult(n_apps=n_apps, n_mixes=1)
    evaluate_mix(config, mix, single, seed=mix_id, schemes=schemes)
    return mix_record(single)


def factor_jobs(
    config: SystemConfig, n_apps: int, n_mixes: int = 50, seed: int = 42
) -> list[Job]:
    """One :class:`Job` per mix of the factor analysis."""
    return [
        Job(
            fn=_factor_point,
            kwargs=dict(
                config=config, n_apps=n_apps, seed=seed, mix_id=mix_id
            ),
            seed=seed,
            label=f"factor-{n_apps}apps-mix{mix_id}",
        )
        for mix_id in range(n_mixes)
    ]


def run_factor_analysis(
    config: SystemConfig,
    n_apps: int,
    n_mixes: int = 50,
    seed: int = 42,
    system: AnalyticSystem | None = None,
    runner: ProcessPoolRunner | None = None,
) -> FactorResult:
    result = SweepResult(n_apps=n_apps, n_mixes=n_mixes)
    if system is None:
        jobs = factor_jobs(config, n_apps, n_mixes, seed)
        for record in run_jobs(jobs, runner):
            merge_mix_record(result, record)
        return FactorResult(n_apps=n_apps, sweep=result)
    for mix_id in range(n_mixes):
        mix = random_single_threaded_mix(n_apps, seed, mix_id)
        schemes = []
        for label, (lat, thr, dat) in VARIANTS:
            scheme = factor_variant(lat, thr, dat, seed=mix_id)
            scheme.name = _variant_name(label)
            schemes.append(scheme)
        evaluate_mix(config, mix, result, seed=mix_id, schemes=schemes,
                     system=system)
    return FactorResult(n_apps=n_apps, sweep=result)
