"""Factor analysis of CDCS's techniques (Fig 12).

Starting from Jigsaw+R, enable latency-aware allocation (+L), thread
placement (+T), and trade-refined data placement (+D) individually and
together (+LTD = CDCS); run at 64 apps (capacity-scarce: T and D dominate)
and 4 apps (capacity-plentiful: L dominates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, default_config
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.experiments.sweeps import (
    SweepResult,
    evaluate_mix,
    mix_record,
    reduce_sweep_records,
)
from repro.model.system import AnalyticSystem
from repro.nuca.cdcs import factor_variant
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.workloads.mixes import random_single_threaded_mix

VARIANTS: list[tuple[str, tuple[bool, bool, bool]]] = [
    ("Jigsaw+R", (False, False, False)),
    ("+L", (True, False, False)),
    ("+T", (False, True, False)),
    ("+D", (False, False, True)),
    ("+LTD", (True, True, True)),
]


@dataclass
class FactorResult:
    n_apps: int
    sweep: SweepResult

    def gmeans(self) -> dict[str, float]:
        out = {}
        for label, _ in VARIANTS:
            name = _variant_name(label)
            out[label] = self.sweep.gmean_speedup(name)
        return out


def _variant_name(label: str) -> str:
    if label == "Jigsaw+R":
        return "Jigsaw+Rbase"
    return f"Jigsaw+R{label}"


def _factor_point(
    config: SystemConfig, n_apps: int, seed: int, mix_id: int
) -> dict:
    """Job body: evaluate all Fig 12 variants on one random mix."""
    mix = random_single_threaded_mix(n_apps, seed, mix_id)
    schemes = []
    for label, (lat, thr, dat) in VARIANTS:
        scheme = factor_variant(lat, thr, dat, seed=mix_id)
        scheme.name = _variant_name(label)
        schemes.append(scheme)
    single = SweepResult(n_apps=n_apps, n_mixes=1)
    evaluate_mix(config, mix, single, seed=mix_id, schemes=schemes)
    return mix_record(single)


def factor_jobs(
    config: SystemConfig, n_apps: int, n_mixes: int = 50, seed: int = 42
) -> list[Job]:
    """One :class:`Job` per mix of the factor analysis."""
    return [
        Job(
            fn=_factor_point,
            kwargs=dict(
                config=config, n_apps=n_apps, seed=seed, mix_id=mix_id
            ),
            seed=seed,
            label=f"factor-{n_apps}apps-mix{mix_id}",
        )
        for mix_id in range(n_mixes)
    ]


def run_factor_analysis(
    config: SystemConfig,
    n_apps: int,
    n_mixes: int = 50,
    seed: int = 42,
    system: AnalyticSystem | None = None,
    runner: ProcessPoolRunner | None = None,
) -> FactorResult:
    if system is None:
        jobs = factor_jobs(config, n_apps, n_mixes, seed)
        sweep = reduce_sweep_records(run_jobs(jobs, runner), n_apps, n_mixes)
        return FactorResult(n_apps=n_apps, sweep=sweep)
    result = SweepResult(n_apps=n_apps, n_mixes=n_mixes)
    for mix_id in range(n_mixes):
        mix = random_single_threaded_mix(n_apps, seed, mix_id)
        schemes = []
        for label, (lat, thr, dat) in VARIANTS:
            scheme = factor_variant(lat, thr, dat, seed=mix_id)
            scheme.name = _variant_name(label)
            schemes.append(scheme)
        evaluate_mix(config, mix, result, seed=mix_id, schemes=schemes,
                     system=system)
    return FactorResult(n_apps=n_apps, sweep=result)


# -- spec registry -----------------------------------------------------------

#: Chip occupancies the Fig 12 ladder runs at (capacity-scarce, -plentiful).
FIG12_APP_COUNTS = (64, 4)


def _fig12_jobs(params: dict) -> list[Job]:
    jobs: list[Job] = []
    for n_apps in FIG12_APP_COUNTS:
        jobs += factor_jobs(
            default_config(), n_apps, params["mixes"], params["seed"]
        )
    return jobs


def _fig12_reduce(records: list, params: dict) -> dict[int, FactorResult]:
    n_mixes = params["mixes"]
    out: dict[int, FactorResult] = {}
    for i, n_apps in enumerate(FIG12_APP_COUNTS):
        chunk = records[i * n_mixes:(i + 1) * n_mixes]
        out[n_apps] = FactorResult(
            n_apps=n_apps,
            sweep=reduce_sweep_records(chunk, n_apps, n_mixes),
        )
    return out


def _fig12_present(result: dict[int, FactorResult], params: dict) -> RunRecord:
    tables = tuple(
        ResultTable.make(
            title=f"Fig 12 factor analysis at {n_apps} apps",
            headers=("Variant", "gmean WS"),
            rows=list(result[n_apps].gmeans().items()),
        )
        for n_apps in FIG12_APP_COUNTS
    )
    return RunRecord(experiment="fig12", params=params, tables=tables)


register(ExperimentSpec(
    name="fig12",
    summary="factor analysis of CDCS's techniques (+L/+T/+D ladder)",
    figure="Fig 12",
    params=(
        Param("mixes", "int", 10, "random mixes per app count"),
        Param("seed", "int", 42, "base RNG seed"),
    ),
    build_jobs=_fig12_jobs,
    reduce=_fig12_reduce,
    present=_fig12_present,
))
