"""Reconfiguration runtime analysis (Table 3).

Measures the software cost of each reconfiguration step at the paper's
three operating points — 16 threads / 16 cores, 16 / 64, 64 / 64 — by
counting each step's primitive operations and converting to cycles
(sched.opcount).  The paper's observation to reproduce: total runtime is a
few Mcycles, dominated by thread/data placement (quadratic in tiles), for
an overhead of ~0.2% at 25 ms periods on 64 tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, default_config
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.nuca.base import build_problem
from repro.nuca.cdcs import Cdcs
from repro.runner import Job
from repro.util.units import ms_to_cycles
from repro.workloads.mixes import random_single_threaded_mix

OPERATING_POINTS: tuple[tuple[int, int], ...] = ((16, 16), (16, 64), (64, 64))

STEPS = ("allocation", "vc_placement", "thread_placement", "data_placement")


@dataclass
class RuntimeRow:
    threads: int
    cores: int
    #: step -> Mcycles per reconfiguration invocation.
    step_mcycles: dict[str, float]

    @property
    def total_mcycles(self) -> float:
        return sum(self.step_mcycles.values())

    def overhead_percent(self, period_ms: float = 25.0) -> float:
        """Software overhead as % of *system* cycles, as the paper reports
        it: one core runs the reconfiguration for ``total`` cycles out of
        ``cores x period`` cycles of aggregate execution."""
        period = ms_to_cycles(period_ms)
        return 100.0 * self.total_mcycles * 1e6 / (period * self.cores)


def _chip_for(cores: int) -> SystemConfig:
    side = int(round(cores ** 0.5))
    if side * side != cores:
        raise ValueError(f"need a square tile count, got {cores}")
    return default_config().with_mesh(side, side)


def run_table3(
    seed: int = 42,
    repeats: int = 3,
) -> list[RuntimeRow]:
    """Measure step costs at each (threads, cores) operating point."""
    rows = []
    for threads, cores in OPERATING_POINTS:
        config = _chip_for(cores)
        step_totals = {step: 0.0 for step in STEPS}
        for rep in range(repeats):
            mix = random_single_threaded_mix(threads, seed, rep)
            problem = build_problem(mix, config)
            result = Cdcs(seed=rep).run(problem)
            assert result.step_cycles is not None
            for step in STEPS:
                step_totals[step] += result.step_cycles.get(step, 0.0)
        rows.append(
            RuntimeRow(
                threads=threads,
                cores=cores,
                step_mcycles={
                    step: total / repeats / 1e6
                    for step, total in step_totals.items()
                },
            )
        )
    return rows


# -- spec registry -----------------------------------------------------------


def _table3_jobs(params: dict) -> list[Job]:
    return [Job(
        fn=run_table3,
        kwargs=dict(seed=params["seed"], repeats=params["repeats"]),
        seed=params["seed"],
        label="table3-runtime",
    )]


def _table3_reduce(records: list, params: dict) -> list[RuntimeRow]:
    return records[0]


def _table3_present(result: list[RuntimeRow], params: dict) -> RunRecord:
    table = ResultTable.make(
        title="Table 3: reconfiguration runtime",
        headers=("thr/cores", "total Mcycles", "overhead@25ms"),
        rows=[
            (f"{r.threads}/{r.cores}", r.total_mcycles,
             f"{r.overhead_percent():.3f}%")
            for r in result
        ],
    )
    return RunRecord(experiment="table3", params=params, tables=(table,))


register(ExperimentSpec(
    name="table3",
    summary="software cost of each reconfiguration step, per chip size",
    figure="Table 3",
    params=(
        Param("repeats", "int", 3, "mixes averaged per operating point"),
        Param("seed", "int", 42, "mix RNG seed"),
    ),
    build_jobs=_table3_jobs,
    reduce=_table3_reduce,
    present=_table3_present,
))
