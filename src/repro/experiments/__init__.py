"""Per-experiment harnesses: one module per paper table/figure (see the
figure index in docs/REPRODUCING.md).

Sweep-shaped experiments expose both a ``run_*`` entry point (taking an
optional ``runner=``) and a ``*_jobs`` builder returning the raw
:class:`repro.runner.Job` list, so callers can compose fan-outs across
experiments before handing them to one runner.
"""

from repro.experiments.case_study import (
    CaseStudyResult,
    render_chip_map,
    run_case_study,
)
from repro.experiments.factor_analysis import (
    VARIANTS,
    FactorResult,
    factor_jobs,
    run_factor_analysis,
)
from repro.experiments.monitors_study import (
    GEOMETRIES,
    MonitorAccuracy,
    curve_error,
    monitor_jobs,
    monitored_curve,
    run_monitor_comparison,
)
from repro.experiments.phase_study import (
    PERIODS,
    PhaseStudyResult,
    phase_point,
    phase_study_jobs,
    run_phase_study,
)
from repro.experiments.placers_study import (
    PLACERS,
    PlacerOutcome,
    placer_jobs,
    run_placer_comparison,
)
from repro.experiments.scalability import (
    TILE_POINTS,
    ScalabilityResult,
    run_scalability,
    scalability_jobs,
    scalability_point,
)
from repro.experiments.reconfig_study import (
    PROTOCOLS,
    PeriodSweepResult,
    ReconfigTrace,
    default_trace_mix,
    reconfig_trace_jobs,
    reconfiguration_penalty_cycles,
    run_period_sweep,
    run_reconfig_trace,
)
from repro.experiments.report import format_breakdown, format_series, format_table
from repro.experiments.sweeps import (
    SweepResult,
    evaluate_mix,
    merge_mix_record,
    mix_record,
    run_sweep,
    sweep_jobs,
)
from repro.experiments.table3 import (
    OPERATING_POINTS,
    RuntimeRow,
    run_table3,
)

__all__ = [
    "CaseStudyResult",
    "FactorResult",
    "GEOMETRIES",
    "MonitorAccuracy",
    "OPERATING_POINTS",
    "PERIODS",
    "PLACERS",
    "PROTOCOLS",
    "PeriodSweepResult",
    "PhaseStudyResult",
    "PlacerOutcome",
    "ReconfigTrace",
    "RuntimeRow",
    "ScalabilityResult",
    "SweepResult",
    "TILE_POINTS",
    "VARIANTS",
    "curve_error",
    "default_trace_mix",
    "evaluate_mix",
    "factor_jobs",
    "format_breakdown",
    "format_series",
    "format_table",
    "merge_mix_record",
    "mix_record",
    "monitor_jobs",
    "monitored_curve",
    "phase_point",
    "phase_study_jobs",
    "placer_jobs",
    "reconfig_trace_jobs",
    "reconfiguration_penalty_cycles",
    "render_chip_map",
    "run_case_study",
    "run_factor_analysis",
    "run_monitor_comparison",
    "run_period_sweep",
    "run_phase_study",
    "run_placer_comparison",
    "run_reconfig_trace",
    "run_scalability",
    "run_sweep",
    "run_table3",
    "scalability_jobs",
    "scalability_point",
    "sweep_jobs",
]
