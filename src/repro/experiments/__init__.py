"""Per-experiment harnesses: one module per paper table/figure (see the
DESIGN.md experiment index)."""

from repro.experiments.case_study import (
    CaseStudyResult,
    render_chip_map,
    run_case_study,
)
from repro.experiments.factor_analysis import (
    VARIANTS,
    FactorResult,
    run_factor_analysis,
)
from repro.experiments.monitors_study import (
    MonitorAccuracy,
    curve_error,
    monitored_curve,
    run_monitor_comparison,
)
from repro.experiments.placers_study import PlacerOutcome, run_placer_comparison
from repro.experiments.reconfig_study import (
    PROTOCOLS,
    PeriodSweepResult,
    ReconfigTrace,
    default_trace_mix,
    reconfiguration_penalty_cycles,
    run_period_sweep,
    run_reconfig_trace,
)
from repro.experiments.report import format_breakdown, format_series, format_table
from repro.experiments.sweeps import SweepResult, evaluate_mix, run_sweep
from repro.experiments.table3 import (
    OPERATING_POINTS,
    RuntimeRow,
    run_table3,
)

__all__ = [
    "CaseStudyResult",
    "FactorResult",
    "MonitorAccuracy",
    "OPERATING_POINTS",
    "PROTOCOLS",
    "PeriodSweepResult",
    "PlacerOutcome",
    "ReconfigTrace",
    "RuntimeRow",
    "SweepResult",
    "VARIANTS",
    "curve_error",
    "default_trace_mix",
    "evaluate_mix",
    "format_breakdown",
    "format_series",
    "format_table",
    "monitored_curve",
    "reconfiguration_penalty_cycles",
    "render_chip_map",
    "run_case_study",
    "run_factor_analysis",
    "run_monitor_comparison",
    "run_period_sweep",
    "run_placer_comparison",
    "run_reconfig_trace",
    "run_sweep",
    "run_table3",
]
