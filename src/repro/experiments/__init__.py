"""Per-experiment harnesses: one module per paper table/figure (see the
experiment registry index in docs/REPRODUCING.md).

Every experiment module registers an :class:`~repro.experiments.spec.ExperimentSpec`
into the process-wide registry (:mod:`repro.experiments.spec`) at import
time — importing this package populates it.  The registry drives the CLI
(``python -m repro run <name>``), :class:`repro.api.Session`, and the
docs cross-checks; specs produce typed, serializable
:class:`~repro.experiments.results.RunRecord` results.

The legacy ``run_*`` entry points (taking an optional ``runner=``) and
``*_jobs`` builders remain as compatibility shims over the same job
builders and reducers, so callers can still compose fan-outs across
experiments by hand before handing them to one runner — or use
:meth:`repro.api.Session.run_batch`, which does exactly that.
"""

from repro.experiments.results import (
    FORMATS,
    ResultSeries,
    ResultTable,
    RunRecord,
    render,
)
from repro.experiments.spec import (
    ExperimentSpec,
    Param,
    all_specs,
    get_spec,
    register,
    spec_names,
)
from repro.experiments.case_study import (
    CaseStudyResult,
    render_chip_map,
    run_case_study,
)
from repro.experiments.factor_analysis import (
    VARIANTS,
    FactorResult,
    factor_jobs,
    run_factor_analysis,
)
from repro.experiments.monitors_study import (
    GEOMETRIES,
    MonitorAccuracy,
    curve_error,
    monitor_jobs,
    monitored_curve,
    run_monitor_comparison,
)
from repro.experiments.phase_study import (
    PERIODS,
    PhaseStudyResult,
    phase_point,
    phase_study_jobs,
    run_phase_study,
)
from repro.experiments.placers_study import (
    PLACERS,
    PlacerOutcome,
    placer_jobs,
    run_placer_comparison,
)
from repro.experiments.scalability import (
    TILE_POINTS,
    ScalabilityResult,
    run_scalability,
    scalability_jobs,
    scalability_point,
)
from repro.experiments.solver_study import (
    DYNAMISM_SWEEP,
    INTERVAL_MCYCLES,
    STRATEGY_SWEEP,
    SolverStudyResult,
    run_solver_study,
    solver_point,
    solver_study_jobs,
)
from repro.experiments.sketch_study import (
    BUDGET_SWEEP,
    SketchStudyResult,
    run_sketch_study,
    sketch_point,
    sketch_study_jobs,
)
from repro.experiments.service_study import (
    ServiceStudyResult,
    run_service_study,
    service_load_point,
    service_study_jobs,
)
from repro.experiments.reconfig_study import (
    PROTOCOLS,
    PeriodSweepResult,
    ReconfigTrace,
    default_trace_mix,
    period_sweep_from_traces,
    reconfig_trace_jobs,
    reconfiguration_penalty_cycles,
    run_period_sweep,
    run_reconfig_trace,
)
from repro.experiments.report import format_breakdown, format_series, format_table
from repro.experiments.sweeps import (
    SweepResult,
    evaluate_mix,
    merge_mix_record,
    mix_record,
    reduce_sweep_records,
    run_sweep,
    sweep_jobs,
)
from repro.experiments.table3 import (
    OPERATING_POINTS,
    RuntimeRow,
    run_table3,
)

__all__ = [
    "BUDGET_SWEEP",
    "CaseStudyResult",
    "DYNAMISM_SWEEP",
    "ExperimentSpec",
    "FORMATS",
    "FactorResult",
    "GEOMETRIES",
    "INTERVAL_MCYCLES",
    "MonitorAccuracy",
    "OPERATING_POINTS",
    "PERIODS",
    "PLACERS",
    "PROTOCOLS",
    "Param",
    "PeriodSweepResult",
    "PhaseStudyResult",
    "PlacerOutcome",
    "ReconfigTrace",
    "ResultSeries",
    "ResultTable",
    "RunRecord",
    "RuntimeRow",
    "STRATEGY_SWEEP",
    "ScalabilityResult",
    "ServiceStudyResult",
    "SketchStudyResult",
    "SolverStudyResult",
    "SweepResult",
    "TILE_POINTS",
    "VARIANTS",
    "all_specs",
    "curve_error",
    "default_trace_mix",
    "evaluate_mix",
    "factor_jobs",
    "format_breakdown",
    "format_series",
    "format_table",
    "get_spec",
    "merge_mix_record",
    "mix_record",
    "monitor_jobs",
    "monitored_curve",
    "period_sweep_from_traces",
    "phase_point",
    "phase_study_jobs",
    "placer_jobs",
    "reconfig_trace_jobs",
    "reconfiguration_penalty_cycles",
    "reduce_sweep_records",
    "register",
    "render",
    "render_chip_map",
    "run_case_study",
    "run_factor_analysis",
    "run_monitor_comparison",
    "run_period_sweep",
    "run_phase_study",
    "run_placer_comparison",
    "run_reconfig_trace",
    "run_scalability",
    "run_service_study",
    "run_sketch_study",
    "run_solver_study",
    "run_sweep",
    "run_table3",
    "scalability_jobs",
    "scalability_point",
    "service_load_point",
    "service_study_jobs",
    "sketch_point",
    "sketch_study_jobs",
    "solver_point",
    "solver_study_jobs",
    "spec_names",
    "sweep_jobs",
]
