"""Sketch study: telemetry budget vs exact-GMON fidelity.

The sketch telemetry stack (:mod:`repro.cache.sketch`,
``DeltaTelemetry``) replaces per-epoch full miss-curve dumps with
bounded-memory sketches and delta streaming.  That trade is only worth
making if the bounded telemetry does not move the placements.  This
study sweeps the per-VC sketch budget on phased mixes and answers, per
(tiles, budget) point:

* **IPC fidelity** — a sketch-driven incremental engine
  (``IncrementalSolve(use_sketches=True)``) drives one simulation, an
  exact-GMON engine drives an identical twin; the study reports both
  IPCs and their relative error (the acceptance bar is <1%).
* **Dirty-set quality** — at every warm epoch boundary the sketch dirty
  set is compared against the exact one on the *same* (prev, current)
  problem pair: precision (how many flagged VCs really moved), recall
  (must be 1.0 — sketch deltas upper-bound the exact distance, so the
  sketch set is a superset by construction), and whether the superset
  property held.
* **Bytes per epoch** — what a ``DeltaTelemetry`` stream against the
  previous epoch's problem costs versus shipping the full problem
  (:func:`repro.service.messages.telemetry_bytes` prices both shapes),
  as a mean over the schedule and a reduction factor.

Each (tiles, budget, mix) tuple is one picklable
:class:`repro.runner.Job`; all reductions are ordered Python sums.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.scalability import mesh_width, scaled_mesh_config
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.nuca.base import build_problem
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sched.engine import IncrementalSolve, ReconfigEngine
from repro.service.messages import (
    PlacementRequest,
    build_delta,
    telemetry_bytes,
)
from repro.sim.engine import EpochEngine
from repro.workloads.mixes import random_phased_mix

#: Default per-VC sketch budget sweep in bytes; 4096 is the "generous"
#: point where placements are pinned bitwise-identical to exact.
BUDGET_SWEEP = (256, 1024, 4096)

#: Default epoch length (matches the solver study: long enough that the
#: generator's phases flip between solves within a short schedule).
DEFAULT_PERIOD_MCYCLES = 200.0


def _solutions_equal(a, b) -> bool:
    return (
        a.vc_sizes == b.vc_sizes
        and a.vc_allocation == b.vc_allocation
        and a.thread_cores == b.thread_cores
    )


def sketch_point(
    tiles: int,
    budget_bytes: int,
    seed: int,
    mix_id: int,
    epochs: int = 6,
    period_mcycles: float = DEFAULT_PERIOD_MCYCLES,
    dirty_threshold: float = 0.05,
) -> dict:
    """Job body: twin warm engines (exact vs sketch) on one phased mix.

    The exact twin is driven epoch by epoch so each boundary's
    (prev, current) problem pair can also be probed for paired dirty-set
    and telemetry-bytes accounting; the sketch twin runs the identical
    schedule through ``run_reconfigured``.  Returns a plain, picklable
    record (ordered sums only).
    """
    if epochs < 2:
        raise ValueError("sketch_point needs >= 2 epochs (cold + warm)")
    config = scaled_mesh_config(tiles)
    mix = random_phased_mix(tiles, seed, mix_id)
    period = period_mcycles * 1e6

    # Exact twin, driven manually so boundaries can be probed.
    sim_exact = EpochEngine(mix, build_problem(mix, config))
    engine_exact = ReconfigEngine(
        "incremental", dirty_threshold=dirty_threshold
    )
    probe = IncrementalSolve(
        dirty_threshold=dirty_threshold,
        use_sketches=True,
        sketch_bytes=budget_bytes,
    )

    exact_solutions = []
    prev_problem = None
    base_problem = None
    full_bytes = 0
    delta_bytes = 0
    flagged = 0        # |sketch dirty| over all warm boundaries
    agreed = 0         # |sketch dirty & exact dirty|
    exact_total = 0    # |exact dirty|
    superset_ok = True
    for epoch in range(epochs):
        current = sim_exact.current_problem()
        if prev_problem is not None:
            exact_dirty = probe.dirty_vcs(prev_problem, current)
            sketch_dirty = probe.dirty_vcs_from_sketches(
                prev_problem, current
            )
            flagged += len(sketch_dirty)
            agreed += len(sketch_dirty & exact_dirty)
            exact_total += len(exact_dirty)
            if not exact_dirty <= sketch_dirty:
                superset_ok = False
        full_request = PlacementRequest(
            chip_id=f"sketch-study-{mix_id}", problem=current, epoch=epoch
        )
        full_bytes += telemetry_bytes(full_request)
        delta = None
        if base_problem is not None:
            delta = build_delta(
                base_problem,
                current,
                f"sketch-study-{mix_id}",
                epoch=epoch,
                sketch_bytes=budget_bytes,
            )
        if delta is None:
            delta_bytes += telemetry_bytes(full_request)
        else:
            delta_bytes += telemetry_bytes(delta)
        base_problem = current
        result = engine_exact.solve(current)
        exact_solutions.append(result.solution)
        sim_exact.run_epoch(result.solution, period)
        prev_problem = current

    # Sketch twin: same mix, same schedule, sketch-driven dirty detection.
    sim_sketch = EpochEngine(mix, build_problem(mix, config))
    engine_sketch = ReconfigEngine(
        "incremental",
        dirty_threshold=dirty_threshold,
        use_sketches=True,
        sketch_bytes=budget_bytes,
    )
    sketch_results = sim_sketch.run_reconfigured(engine_sketch, period, epochs)

    matches = 0
    for exact_solution, sketch_result in zip(
        exact_solutions, sketch_results
    ):
        if _solutions_equal(exact_solution, sketch_result.solution):
            matches += 1

    ipc_exact = 0.0
    for epoch_result in sim_exact.trace.results:
        ipc_exact += epoch_result.aggregate_ipc
    ipc_exact /= len(sim_exact.trace.results)
    ipc_sketch = 0.0
    for epoch_result in sim_sketch.trace.results:
        ipc_sketch += epoch_result.aggregate_ipc
    ipc_sketch /= len(sim_sketch.trace.results)

    phase_changes = 0
    previous = None
    for epoch_result in sim_exact.trace.results:
        if previous is not None and epoch_result.phases != previous:
            phase_changes += 1
        previous = epoch_result.phases

    return {
        "tiles": tiles,
        "budget_bytes": budget_bytes,
        "mix_id": mix_id,
        "epochs": epochs,
        "period_mcycles": period_mcycles,
        "dirty_threshold": dirty_threshold,
        "phase_changes": phase_changes,
        "ipc_exact": ipc_exact,
        "ipc_sketch": ipc_sketch,
        "ipc_rel_err": abs(ipc_sketch - ipc_exact) / ipc_exact
        if ipc_exact > 0
        else 0.0,
        "placement_matches": matches,
        "placement_match_frac": matches / epochs,
        "dirty_precision": agreed / flagged if flagged else 1.0,
        "dirty_recall": agreed / exact_total if exact_total else 1.0,
        "superset_ok": superset_ok,
        "full_bytes_per_epoch": full_bytes / epochs,
        "delta_bytes_per_epoch": delta_bytes / epochs,
        "bytes_reduction_x": full_bytes / delta_bytes
        if delta_bytes
        else float(epochs),
    }


def sketch_study_jobs(
    tiles: tuple[int, ...] = (16, 64),
    budgets: tuple[int, ...] = BUDGET_SWEEP,
    n_mixes: int = 2,
    seed: int = 42,
    epochs: int = 6,
    period_mcycles: float = DEFAULT_PERIOD_MCYCLES,
    dirty_threshold: float = 0.05,
) -> list[Job]:
    """One :class:`Job` per (tiles, budget, mix) point."""
    for count in tiles:
        mesh_width(count)  # validate early
    for budget in budgets:
        if budget < 128:
            raise ValueError(
                f"sketch budget {budget} too small (need >= 128 bytes)"
            )
    return [
        Job(
            fn=sketch_point,
            kwargs=dict(
                tiles=count, budget_bytes=budget, seed=seed, mix_id=mix_id,
                epochs=epochs, period_mcycles=period_mcycles,
                dirty_threshold=dirty_threshold,
            ),
            seed=seed,
            label=f"sketch-{count}t-{budget}B-mix{mix_id}",
        )
        for count in tiles
        for budget in budgets
        for mix_id in range(n_mixes)
    ]


@dataclass
class SketchStudyResult:
    """Aggregated study outcome, keyed by (tiles, budget_bytes)."""

    #: (tiles, budget_bytes) -> one record per mix.
    records: dict[tuple[int, int], list[dict]]

    def points(self) -> list[tuple[int, int]]:
        return sorted(self.records)

    def mean(self, point: tuple[int, int], key: str) -> float:
        rows = self.records[point]
        total = 0.0
        for row in rows:
            total += row[key]
        return total / len(rows)

    def worst_ipc_err(self, point: tuple[int, int]) -> float:
        return max(row["ipc_rel_err"] for row in self.records[point])

    def superset_ok(self, point: tuple[int, int]) -> bool:
        return all(row["superset_ok"] for row in self.records[point])

    def table_rows(self) -> list[tuple]:
        return [
            (
                f"{tiles}",
                f"{budget}",
                self.mean((tiles, budget), "ipc_exact"),
                self.mean((tiles, budget), "ipc_sketch"),
                100.0 * self.worst_ipc_err((tiles, budget)),
                self.mean((tiles, budget), "dirty_precision"),
                self.mean((tiles, budget), "dirty_recall"),
                "yes" if self.superset_ok((tiles, budget)) else "NO",
                self.mean((tiles, budget), "placement_match_frac"),
                self.mean((tiles, budget), "full_bytes_per_epoch"),
                self.mean((tiles, budget), "delta_bytes_per_epoch"),
                self.mean((tiles, budget), "bytes_reduction_x"),
            )
            for tiles, budget in self.points()
        ]


def reduce_sketch_records(records: list[dict]) -> SketchStudyResult:
    """Group per-point payloads by (tiles, budget_bytes)."""
    grouped: dict[tuple[int, int], list[dict]] = {}
    for record in records:
        key = (record["tiles"], record["budget_bytes"])
        grouped.setdefault(key, []).append(record)
    return SketchStudyResult(grouped)


def run_sketch_study(
    tiles: tuple[int, ...] = (16, 64),
    budgets: tuple[int, ...] = BUDGET_SWEEP,
    n_mixes: int = 2,
    seed: int = 42,
    epochs: int = 6,
    period_mcycles: float = DEFAULT_PERIOD_MCYCLES,
    dirty_threshold: float = 0.05,
    runner: ProcessPoolRunner | None = None,
) -> SketchStudyResult:
    """Sweep sketch budgets x mesh sizes on twin warm engines."""
    jobs = sketch_study_jobs(
        tiles=tiles, budgets=budgets, n_mixes=n_mixes, seed=seed,
        epochs=epochs, period_mcycles=period_mcycles,
        dirty_threshold=dirty_threshold,
    )
    return reduce_sketch_records(run_jobs(jobs, runner))


# -- spec registry -----------------------------------------------------------


def parse_budgets(text: str) -> tuple[int, ...]:
    """Parse comma-separated sketch budgets in bytes."""
    parts = [p.strip() for p in str(text).split(",") if p.strip()]
    if not parts:
        raise ValueError("budgets sweep needs at least one value")
    budgets = []
    for part in parts:
        try:
            budgets.append(int(part))
        except ValueError:
            raise ValueError(
                f"budgets expects comma-separated integers, got {part!r}"
            ) from None
    return tuple(budgets)


def _sketch_jobs(params: dict) -> list[Job]:
    return sketch_study_jobs(
        tiles=tuple(params["tiles"]),
        budgets=parse_budgets(params["budgets"]),
        n_mixes=params["mixes"],
        seed=params["seed"],
        epochs=params["epochs"],
        period_mcycles=params["period_mcycles"],
        dirty_threshold=params["threshold"],
    )


def _sketch_reduce(records: list, params: dict) -> SketchStudyResult:
    return reduce_sketch_records(records)


def _sketch_present(result: SketchStudyResult, params: dict) -> RunRecord:
    table = ResultTable.make(
        title=f"Sketch study: telemetry budget vs exact GMONs "
              f"({params['mixes']} mixes/point, {params['epochs']} epochs, "
              f"threshold {params['threshold']:g})",
        headers=("tiles", "budget B", "IPC exact", "IPC sketch",
                 "worst IPC err %", "precision", "recall", "superset",
                 "match frac", "full B/epoch", "delta B/epoch",
                 "reduction x"),
        rows=result.table_rows(),
    )
    return RunRecord(
        experiment="sketch_study", params=params, tables=(table,),
    )


register(ExperimentSpec(
    name="sketch_study",
    summary="sketch telemetry budgets vs exact-GMON placements",
    figure="beyond paper",
    params=(
        Param("tiles", "tiles", (16, 64),
              "comma-separated square tile counts"),
        Param("budgets", "str", ",".join(str(b) for b in BUDGET_SWEEP),
              "comma-separated per-VC sketch budgets in bytes"),
        Param("mixes", "int", 2, "random phased mixes per point"),
        Param("seed", "int", 42, "mix RNG seed"),
        Param("epochs", "int", 6, "reconfigurations per point (>= 2)"),
        Param("period_mcycles", "float", DEFAULT_PERIOD_MCYCLES,
              "epoch length in Mcycles"),
        Param("threshold", "float", 0.05, "dirty threshold (relative)"),
    ),
    build_jobs=_sketch_jobs,
    reduce=_sketch_reduce,
    present=_sketch_present,
))
