"""Declarative experiment specs and the process-wide registry.

The paper's evaluation is one family of sweeps over the same
(config, mix, scheme) axes; this module is the uniform request/response
schema over that family.  Each experiment module declares one (or more)
:class:`ExperimentSpec` — a name, a one-line summary, the paper
figure/table it reproduces, a typed parameter schema
(:class:`Param`), and three pure functions:

* ``build_jobs(params) -> list[Job]`` — the experiment's fan-out as
  :class:`repro.runner.Job` points (so every spec transparently gains
  ``--jobs`` parallelism and content-hashed caching);
* ``reduce(records, params) -> result`` — fold the job payloads back
  into the experiment's rich result object (``SweepResult``,
  ``PhaseStudyResult``, ...);
* ``present(result, params) -> RunRecord`` — the typed, serializable
  presentation (:class:`repro.experiments.results.RunRecord`).

Specs register into a process-wide registry (:func:`register`); the CLI
(``python -m repro run <name>``), :class:`repro.api.Session`, the
``list`` command, and ``tools/docs_check.py`` are all driven from it.
Importing :mod:`repro.experiments` populates the registry — every
experiment module registers its spec(s) at import time.

The legacy ``run_*`` functions remain as thin compatibility shims over
the same job builders and reducers, so both paths are bitwise-identical
by construction.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.experiments.results import RunRecord
from repro.runner import Job


def _parse_tiles(text: str) -> tuple[int, ...]:
    # Imported lazily: scalability itself registers a spec into this
    # module, so a top-level import would be circular.
    from repro.experiments.scalability import parse_tiles

    return parse_tiles(text)


#: Parameter kind -> parser callable (argparse ``type=`` compatible:
#: raises ``ValueError``/``ArgumentTypeError`` with a usable message).
PARAM_KINDS: dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "str": str,
    "tiles": _parse_tiles,
}


@dataclass(frozen=True)
class Param:
    """One typed experiment parameter: name, kind, default, help text."""

    name: str
    kind: str = "int"
    default: Any = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(
                f"param {self.name!r}: unknown kind {self.kind!r} "
                f"(choose from {sorted(PARAM_KINDS)})"
            )

    @property
    def parser(self) -> Callable[[str], Any]:
        """The ``type=`` callable argparse (and ``--param k=v``) uses."""
        return PARAM_KINDS[self.kind]

    def parse(self, text: str) -> Any:
        try:
            return self.parser(text)
        except argparse.ArgumentTypeError:
            raise
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r} expects {self.kind}, "
                f"got {text!r}"
            ) from None

    def coerce(self, value: Any) -> Any:
        """Validate/normalize one override of any origin: strings go
        through :meth:`parse` (the CLI path), everything else is
        type-checked against the kind so a wrong-typed programmatic value
        fails here — with a parameter-named message — instead of deep
        inside a job builder."""
        if isinstance(value, str):
            return self.parse(value) if self.kind != "str" else value
        if self.kind == "str":
            raise ValueError(
                f"parameter {self.name!r} expects str, got {value!r}"
            )
        if self.kind == "tiles":
            return self._coerce_tiles(value)
        if isinstance(value, bool):
            raise ValueError(
                f"parameter {self.name!r} expects {self.kind}, "
                f"got {value!r}"
            )
        if self.kind == "int":
            if not isinstance(value, int):
                raise ValueError(
                    f"parameter {self.name!r} expects int, got {value!r}"
                )
            return value
        if not isinstance(value, (int, float)):
            raise ValueError(
                f"parameter {self.name!r} expects float, got {value!r}"
            )
        return float(value)

    def _coerce_tiles(self, value: Any) -> tuple[int, ...]:
        from repro.experiments.scalability import mesh_width

        if isinstance(value, bool):
            raise ValueError(
                f"parameter {self.name!r} expects tile counts, "
                f"got {value!r}"
            )
        if isinstance(value, int):
            value = (value,)
        try:
            counts = tuple(value)
        except TypeError:
            raise ValueError(
                f"parameter {self.name!r} expects an int or a sequence "
                f"of ints, got {value!r}"
            ) from None
        if not counts:
            raise ValueError(
                f"parameter {self.name!r} needs at least one tile count"
            )
        for count in counts:
            if isinstance(count, bool) or not isinstance(count, int):
                raise ValueError(
                    f"parameter {self.name!r} expects ints, got {count!r}"
                )
            mesh_width(count)  # raises ValueError on non-square counts
        return counts

    def describe(self) -> dict[str, Any]:
        from repro.experiments.results import _cell

        return {
            "name": self.name,
            "kind": self.kind,
            "default": _cell(self.default),
            "help": self.help,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: schema plus build/reduce/present."""

    name: str
    summary: str
    #: The paper figure/table reproduced ("Fig 11", "Table 3", ...) or
    #: "beyond paper" for the post-paper studies.
    figure: str
    params: tuple[Param, ...]
    build_jobs: Callable[[dict[str, Any]], list[Job]]
    reduce: Callable[[list, dict[str, Any]], Any]
    present: Callable[[Any, dict[str, Any]], RunRecord]

    def defaults(self) -> dict[str, Any]:
        return {p.name: p.default for p in self.params}

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"{self.name}: no parameter {name!r}")

    def resolve(self, overrides: Mapping[str, Any] | None = None) -> dict:
        """Defaults with *overrides* applied; strings are parsed and
        other values type-checked through the parameter's kind
        (:meth:`Param.coerce`), unknown names raise ``ValueError``."""
        params = self.defaults()
        for key, value in (overrides or {}).items():
            key = key.replace("-", "_")
            if key not in params:
                raise ValueError(
                    f"{self.name}: unknown parameter {key!r} "
                    f"(have: {', '.join(sorted(params))})"
                )
            params[key] = self.param(key).coerce(value)
        return params

    def describe(self) -> dict[str, Any]:
        """Machine-readable registry entry (``list --json``)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "figure": self.figure,
            "params": [p.describe() for p in self.params],
        }


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add *spec* to the registry; duplicate names are a bug."""
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r} "
            f"(have: {', '.join(spec_names())})"
        ) from None


def spec_names() -> list[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


def all_specs() -> list[ExperimentSpec]:
    _ensure_registered()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _ensure_registered() -> None:
    # Registration happens when the experiment modules import; pulling in
    # the package is enough (and a no-op once loaded).
    import repro.experiments  # noqa: F401
