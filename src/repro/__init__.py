"""repro: a reproduction of CDCS — computation and data co-scheduling for
distributed cache hierarchies (Beckmann, Tsai, Sanchez; HPCA 2015).

Public API tour:

* :mod:`repro.config` — the Table 2 chip descriptions.
* :mod:`repro.workloads` — app profiles (miss curves), mixes, streams.
* :mod:`repro.nuca` — S-NUCA / R-NUCA / Jigsaw / CDCS schemes.
* :mod:`repro.sched` — CDCS's allocation + placement algorithms.
* :mod:`repro.model` — the analytic evaluation engine and metrics.
* :mod:`repro.sim` — the trace-driven simulator with demand moves.
* :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    from repro import AnalyticSystem, case_study_config, standard_schemes
    from repro.workloads import case_study_mix

    system = AnalyticSystem(case_study_config())
    mix = case_study_mix()
    for scheme in standard_schemes():
        evaluation = system.evaluate(mix, scheme)
        ...
"""

from repro.config import (
    SystemConfig,
    case_study_config,
    default_config,
    small_test_config,
)
from repro.model.metrics import gmean, per_app_speedups, weighted_speedup
from repro.model.system import AnalyticSystem, MixEvaluation
from repro.nuca import Cdcs, Jigsaw, RNuca, SNuca, build_problem, standard_schemes

__version__ = "1.0.0"

__all__ = [
    "AnalyticSystem",
    "Cdcs",
    "Jigsaw",
    "MixEvaluation",
    "RNuca",
    "SNuca",
    "SystemConfig",
    "build_problem",
    "case_study_config",
    "default_config",
    "gmean",
    "per_app_speedups",
    "small_test_config",
    "standard_schemes",
    "weighted_speedup",
    "__version__",
]
