"""Cross-scheme metrics: weighted speedup, gmeans, normalized aggregates.

The paper reports weighted speedup over the S-NUCA baseline
(``WS = (1/P) sum_p perf_p / perf_p^S-NUCA``, Sec V) and normalizes latency,
traffic and energy aggregates to CDCS (Fig 11).  These helpers operate on
:class:`MixEvaluation` objects from the analytic engine.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.model.system import MixEvaluation


def weighted_speedup(
    evaluation: MixEvaluation,
    baseline: MixEvaluation,
    alone_perf: dict[int, float] | None = None,
) -> float:
    """Weighted speedup over the baseline evaluation (same mix).

    The paper follows UCP [52] / Snavely-Tullsen [55]: a scheme's weighted
    speedup is ``(1/P) sum_p perf_p / perf_p^alone`` (each process
    normalized by its *alone* performance on the chip), and the reported
    number is the scheme's WS divided by S-NUCA's WS.  *alone_perf* maps
    process_id -> alone performance; without it this degrades to the plain
    mean of per-process ratios (equal weighting).
    """
    if evaluation.process_perf.keys() != baseline.process_perf.keys():
        raise ValueError("evaluations are not for the same mix")
    if alone_perf is None:
        ratios = [
            evaluation.process_perf[pid] / baseline.process_perf[pid]
            for pid in evaluation.process_perf
        ]
        return sum(ratios) / len(ratios)
    ws_eval = sum(
        evaluation.process_perf[pid] / alone_perf[pid]
        for pid in evaluation.process_perf
    )
    ws_base = sum(
        baseline.process_perf[pid] / alone_perf[pid]
        for pid in baseline.process_perf
    )
    return ws_eval / ws_base


def per_process_speedups(
    evaluation: MixEvaluation, baseline: MixEvaluation
) -> dict[int, float]:
    return {
        pid: evaluation.process_perf[pid] / baseline.process_perf[pid]
        for pid in evaluation.process_perf
    }


def per_app_speedups(
    evaluation: MixEvaluation, baseline: MixEvaluation
) -> dict[str, float]:
    """Geometric-mean speedup per distinct app name in the mix."""
    groups: dict[str, list[float]] = {}
    speedups = per_process_speedups(evaluation, baseline)
    for pid, ratio in speedups.items():
        groups.setdefault(evaluation.process_app[pid], []).append(ratio)
    return {app: gmean(vals) for app, vals in groups.items()}


def gmean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("gmean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def inverse_cdf(values: Sequence[float]) -> list[float]:
    """Values sorted descending — the paper's Fig 11a presentation (each
    scheme's speedups sorted along the x axis by improvement)."""
    return sorted(values, reverse=True)


def normalize_to(
    per_scheme: dict[str, float], reference: str
) -> dict[str, float]:
    """Normalize a {scheme: value} dict to the reference scheme's value."""
    ref = per_scheme[reference]
    if ref == 0:
        raise ValueError(f"reference {reference} has zero value")
    return {scheme: v / ref for scheme, v in per_scheme.items()}
