"""The analytic evaluation engine.

Evaluates any scheme's :class:`PlacementSolution` on a mix by composing:

* **Eq 2 geometry** — per-thread expected hops to its data (via each VC's
  per-bank allocation, which encodes the VTB's proportional access spread);
* **miss ratios** — each VC's miss curve at its allocated size;
* **the core model** — CPI from base CPI + exposed memory latency;
* **the DRAM bandwidth fixed point** — IPCs determine miss bandwidth,
  which determines queueing delay, which feeds back into IPCs (damped
  iteration; this is how relieving one app's misses speeds up others, as
  in Table 1's milc).

Outputs per-thread and per-process performance plus the traffic and energy
aggregates that Figs 11, 14 and 15 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig
from repro.kernels import use_vectorized
from repro.cores.ooo_core import CoreModel
from repro.mem.controller import MemoryControllers
from repro.mem.dram import DramModel
from repro.model.energy import EnergyBreakdown, EnergyParams, energy_per_instruction
from repro.noc.traffic import TrafficClass
from repro.nuca.base import NucaScheme, SchemeResult, build_problem
from repro.sched.cost_model import spread_hops_batch
from repro.sched.problem import PlacementProblem
from repro.util.units import CACHE_LINE_BYTES
from repro.workloads.mixes import Mix

#: Accesses sampled per monitor access (Sec IV-I: "we sample every 64th").
MONITOR_SAMPLE_RATE = 1.0 / 64


@dataclass
class ThreadPerf:
    """Steady-state performance of one thread under one scheme."""

    thread_id: int
    process_id: int
    app: str
    core: int
    ipc: float
    cpi: float
    apki: float
    mpki: float
    #: Mean network hops of one LLC access (one way).
    mean_hops: float
    #: Cycles per LLC access spent on-chip (round-trip net + bank).
    onchip_latency: float
    #: Cycles per LLC access spent off-chip (miss ratio x memory latency).
    offchip_latency: float
    #: Flit-hops per kilo-instruction by traffic class.
    traffic_pki: dict[str, float] = field(default_factory=dict)


@dataclass
class MixEvaluation:
    """Everything the benches need from one (mix, scheme) evaluation."""

    scheme: str
    threads: list[ThreadPerf]
    #: process_id -> performance (IPC for single-threaded; harmonic mean of
    #: thread IPCs for multithreaded, modeling barrier-limited progress).
    process_perf: dict[int, float]
    process_app: dict[int, str]
    dram_extra_latency: float
    dram_utilization: float
    energy: EnergyBreakdown

    # -- aggregates used by Fig 11b-e ---------------------------------------

    def mean_onchip_latency_per_access(self) -> float:
        """Access-weighted mean on-chip *network* latency (Fig 11b)."""
        num = sum(t.apki * (t.onchip_latency - 0.0) for t in self.threads)
        den = sum(t.apki for t in self.threads)
        return num / den if den else 0.0

    def offchip_latency_per_kiloinstr(self) -> float:
        """Aggregate off-chip latency per kilo-instruction (Fig 11c)."""
        return sum(t.apki * t.offchip_latency for t in self.threads) / max(
            len(self.threads), 1
        )

    def traffic_per_instr(self) -> dict[str, float]:
        """IPC-weighted flit-hops per instruction by class (Fig 11d)."""
        total_ipc = sum(t.ipc for t in self.threads)
        out = {cls.value: 0.0 for cls in TrafficClass}
        if total_ipc <= 0:
            return out
        for t in self.threads:
            for cls, value in t.traffic_pki.items():
                out[cls] += t.ipc * value / 1000.0
        return {cls: v / total_ipc for cls, v in out.items()}

    def total_traffic_per_instr(self) -> float:
        return sum(self.traffic_per_instr().values())


class AnalyticSystem:
    """Evaluates schemes on mixes for a given chip configuration."""

    def __init__(
        self,
        config: SystemConfig,
        energy_params: EnergyParams | None = None,
        fixed_point_iterations: int = 25,
        damping: float = 0.5,
    ):
        self.config = config
        self.energy_params = energy_params or EnergyParams()
        self.iterations = fixed_point_iterations
        self.damping = damping
        self.core_model = CoreModel(config.core)
        self.dram = DramModel(config.memory)

    # -- main entry points ---------------------------------------------------

    def evaluate(self, mix: Mix, scheme: NucaScheme) -> MixEvaluation:
        problem = build_problem(mix, self.config)
        result = scheme.run(problem)
        return self.evaluate_solution(mix, problem, result)

    def alone_performance(self, mix: Mix) -> dict[int, float]:
        """Per-process performance running *alone* on this chip under
        S-NUCA — the normalization reference of the paper's weighted
        speedup (UCP-style, Sec V).  Cached per app name."""
        from repro.nuca.snuca import SNuca
        from repro.workloads.mixes import make_mix

        if not hasattr(self, "_alone_cache"):
            self._alone_cache: dict[str, float] = {}
        out: dict[int, float] = {}
        for proc in mix.processes:
            name = proc.profile.name
            if name not in self._alone_cache:
                solo = make_mix([name])
                evaluation = self.evaluate(solo, SNuca())
                self._alone_cache[name] = evaluation.process_perf[0]
            out[proc.process_id] = self._alone_cache[name]
        return out

    def evaluate_solution(
        self, mix: Mix, problem: PlacementProblem, result: SchemeResult
    ) -> MixEvaluation:
        geometry = self._thread_geometry(mix, problem, result)
        dram_extra = self._solve_bandwidth_fixed_point(geometry)
        return self._finalize(mix, problem, result, geometry, dram_extra)

    def evaluate_solutions_batch(
        self, items: list[tuple[Mix, PlacementProblem, SchemeResult]]
    ) -> list[MixEvaluation]:
        """Evaluate many (mix, problem, result) triples as stacked passes.

        The mega-batch runner's scoring kernel: every item's VC hop tables
        are computed in one chunked pass per shared distance matrix, and
        the 25-iteration DRAM bandwidth fixed point runs once per
        thread-count cohort as (B, T) row operations.  Item *i*'s
        evaluation is bitwise-identical to ``evaluate_solution(*items[i])``
        — rows never mix, reductions keep per-row sequential order, and
        the final assembly is the per-item :meth:`_finalize` verbatim.
        """
        if not use_vectorized() or len(items) <= 1:
            return [self.evaluate_solution(*item) for item in items]
        geometries = self._thread_geometries_batch(items)
        dram_extra = [0.0] * len(items)
        cohorts: dict[int, list[int]] = {}
        for i, geometry in enumerate(geometries):
            if geometry:
                cohorts.setdefault(len(geometry), []).append(i)
            # else: empty geometry has zero demand, dram_extra stays 0.0
        for idxs in cohorts.values():
            columns = [self._geometry_arrays(geometries[i]) for i in idxs]
            stacked = {
                key: np.stack([arrays[key] for arrays in columns])
                for key in columns[0]
            }
            extras = self._solve_bandwidth_fixed_point_rows(stacked)
            for row, i in enumerate(idxs):
                dram_extra[i] = float(extras[row])
        return [
            self._finalize(mix, problem, result, geometries[i], dram_extra[i])
            for i, (mix, problem, result) in enumerate(items)
        ]

    # -- step 1: placement-dependent geometry --------------------------------

    def _spread_tables(
        self, problem: PlacementProblem, result: SchemeResult
    ) -> tuple[dict[int, dict[int, float]], dict[int, float]]:
        """Per-VC normalized access spread over banks and miss ratio."""
        topo = problem.topology
        solution = result.solution
        vc_spread: dict[int, dict[int, float]] = {}
        vc_miss_ratio: dict[int, float] = {}
        for vc in problem.vcs:
            rate = sum(problem.accessors_of(vc.vc_id).values())
            if rate <= 0:
                continue
            alloc = solution.vc_allocation.get(vc.vc_id, {})
            total = sum(alloc.values())
            if total > 0:
                vc_spread[vc.vc_id] = {b: v / total for b, v in alloc.items()}
            else:
                # A VC with accesses but no capacity: its accesses still hit
                # a home bank (one partition target); use the owner's tile.
                home = solution.thread_cores.get(
                    vc.owner_thread if vc.owner_thread is not None else -1,
                    topo.center_tile(),
                )
                vc_spread[vc.vc_id] = {home: 1.0}
            size = solution.vc_sizes.get(vc.vc_id, 0.0)
            vc_miss_ratio[vc.vc_id] = min(float(vc.miss_curve(size)), rate) / rate
        return vc_spread, vc_miss_ratio

    @staticmethod
    def _spread_arrays(
        vc_spread: dict[int, dict[int, float]],
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Each VC's spread as ``(banks, fracs)`` arrays, in dict order."""
        out = []
        for spread in vc_spread.values():
            banks = np.fromiter(spread.keys(), np.int64, len(spread))
            fracs = np.fromiter(spread.values(), np.float64, len(spread))
            out.append((banks, fracs))
        return out

    def _vc_hop_tables(
        self,
        dist,
        mc_dist: np.ndarray,
        vc_spread: dict[int, dict[int, float]],
    ) -> tuple[dict[int, np.ndarray], dict[int, float]]:
        """Per VC, the expected access distance from EVERY possible core
        (terms accumulate in the spread's iteration order via cumsum,
        bitwise the scalar sums); threads then just index the vectors."""
        vc_core_hops: dict[int, np.ndarray] = {}
        vc_mc_hops: dict[int, float] = {}
        if not vc_spread:
            return vc_core_hops, vc_mc_hops
        if isinstance(dist, np.ndarray):
            hops, mc_hops = spread_hops_batch(
                dist, mc_dist, self._spread_arrays(vc_spread)
            )
            for i, vc_id in enumerate(vc_spread):
                vc_core_hops[vc_id] = hops[i]
                vc_mc_hops[vc_id] = float(mc_hops[i])
        else:
            # Lazy (large-mesh) matrices only support 1-D column gathers.
            for vc_id, (banks, fracs) in zip(
                vc_spread, self._spread_arrays(vc_spread)
            ):
                vc_core_hops[vc_id] = np.cumsum(
                    fracs[None, :] * dist[:, banks], axis=1
                )[:, -1]
                vc_mc_hops[vc_id] = float(np.cumsum(fracs * mc_dist[banks])[-1])
        return vc_core_hops, vc_mc_hops

    def _thread_geometry(
        self, mix: Mix, problem: PlacementProblem, result: SchemeResult
    ) -> list[dict]:
        topo = problem.topology
        dist = topo.distance_matrix
        mcs = MemoryControllers(topo, self.config.memory)  # type: ignore[arg-type]
        mc_dist = mcs.mean_distance_matrix

        vc_spread, vc_miss_ratio = self._spread_tables(problem, result)
        vc_core_hops: dict[int, np.ndarray] = {}
        vc_mc_hops: dict[int, float] = {}
        if use_vectorized():
            vc_core_hops, vc_mc_hops = self._vc_hop_tables(
                dist, mc_dist, vc_spread
            )
        return self._geometry_from_spreads(
            mix, problem, result, dist, mc_dist,
            vc_spread, vc_miss_ratio, vc_core_hops, vc_mc_hops,
        )

    def _thread_geometries_batch(
        self, items: list[tuple[Mix, PlacementProblem, SchemeResult]]
    ) -> list[list[dict]]:
        """Geometry dicts for many items, batching all VC hop tables that
        share a (dense, process-shared) distance matrix into one pass."""
        spreads = [
            self._spread_tables(problem, result)
            for _, problem, result in items
        ]
        dists = []
        mc_dists = []
        for _, problem, _ in items:
            topo = problem.topology
            dists.append(topo.distance_matrix)
            mc_dists.append(
                MemoryControllers(  # type: ignore[arg-type]
                    topo, self.config.memory
                ).mean_distance_matrix
            )
        hop_tables: list[tuple[dict[int, np.ndarray], dict[int, float]]] = []
        by_dist: dict[int, list[int]] = {}
        for i, dist in enumerate(dists):
            hop_tables.append(({}, {}))
            if isinstance(dist, np.ndarray):
                by_dist.setdefault(id(dist), []).append(i)
            else:
                hop_tables[i] = self._vc_hop_tables(
                    dist, mc_dists[i], spreads[i][0]
                )
        for idxs in by_dist.values():
            flat: list[tuple[np.ndarray, np.ndarray]] = []
            for i in idxs:
                flat.extend(self._spread_arrays(spreads[i][0]))
            if not flat:
                continue
            hops, mc_hops = spread_hops_batch(dists[idxs[0]], mc_dists[idxs[0]], flat)
            pos = 0
            for i in idxs:
                core_table: dict[int, np.ndarray] = {}
                mc_table: dict[int, float] = {}
                for vc_id in spreads[i][0]:
                    core_table[vc_id] = hops[pos]
                    mc_table[vc_id] = float(mc_hops[pos])
                    pos += 1
                hop_tables[i] = (core_table, mc_table)
        return [
            self._geometry_from_spreads(
                mix, problem, result, dists[i], mc_dists[i],
                spreads[i][0], spreads[i][1], *hop_tables[i],
            )
            for i, (mix, problem, result) in enumerate(items)
        ]

    def _geometry_from_spreads(
        self,
        mix: Mix,
        problem: PlacementProblem,
        result: SchemeResult,
        dist,
        mc_dist: np.ndarray,
        vc_spread: dict[int, dict[int, float]],
        vc_miss_ratio: dict[int, float],
        vc_core_hops: dict[int, np.ndarray],
        vc_mc_hops: dict[int, float],
    ) -> list[dict]:
        profile_of = {p.process_id: p.profile for p in mix.processes}
        solution = result.solution
        process_of_thread = {
            t: p.process_id for p in mix.processes for t in p.thread_ids
        }
        geometry = []
        for thread in problem.threads:
            core = solution.thread_cores[thread.thread_id]
            profile = profile_of[process_of_thread[thread.thread_id]]
            total_rate = thread.total_accesses
            e_hops = 0.0
            e_mc_hops = 0.0
            miss_ratio = 0.0
            if total_rate > 0:
                for vc_id, rate in thread.vc_accesses.items():
                    w = rate / total_rate
                    mu = vc_miss_ratio.get(vc_id, 0.0)
                    if vc_id in vc_core_hops:
                        d = vc_core_hops[vc_id][core]
                        dm = vc_mc_hops[vc_id]
                    else:
                        spread = vc_spread.get(vc_id, {})
                        d = sum(frac * dist[core, b] for b, frac in spread.items())
                        dm = sum(frac * mc_dist[b] for b, frac in spread.items())
                    e_hops += w * d
                    e_mc_hops += w * mu * dm
                    miss_ratio += w * mu
                if miss_ratio > 0:
                    e_mc_hops /= miss_ratio  # expected MC hops *given* a miss
            geometry.append(
                {
                    "thread": thread,
                    "core": core,
                    "profile": profile,
                    "process_id": process_of_thread[thread.thread_id],
                    "mean_hops": e_hops,
                    "mc_hops": e_mc_hops,
                    "miss_ratio": miss_ratio,
                }
            )
        return geometry

    # -- step 2: IPC <-> bandwidth fixed point --------------------------------

    def _access_latency(self, geo: dict, dram_extra: float) -> tuple[float, float]:
        """(on-chip, off-chip) cycles per LLC access for one thread."""
        noc = self.config.noc
        onchip = 2.0 * noc.hop_latency * geo["mean_hops"] + self.config.cache.bank_latency
        mem_lat = (
            2.0 * noc.hop_latency * geo["mc_hops"]
            + self.config.memory.zero_load_latency
            + dram_extra
        )
        offchip = geo["miss_ratio"] * mem_lat
        return onchip, offchip

    def _thread_ipc(self, geo: dict, dram_extra: float) -> float:
        onchip, offchip = self._access_latency(geo, dram_extra)
        profile = geo["profile"]
        return self.core_model.ipc(
            profile.base_cpi, profile.llc_apki, onchip, offchip
        )

    def _geometry_arrays(self, geometry: list[dict]) -> dict[str, np.ndarray]:
        """Per-thread state as (T,) float64 columns for the vectorized
        bandwidth fixed point (mean/MC hops, miss ratio, profile scalars)."""
        def column(fn) -> np.ndarray:
            return np.array([fn(geo) for geo in geometry], dtype=np.float64)

        return {
            "mean_hops": column(lambda g: g["mean_hops"]),
            "mc_hops": column(lambda g: g["mc_hops"]),
            "miss_ratio": column(lambda g: g["miss_ratio"]),
            "base_cpi": column(lambda g: g["profile"].base_cpi),
            "apki": column(lambda g: g["profile"].llc_apki),
            "write_fraction": column(lambda g: g["profile"].write_fraction),
        }

    def _demand_from_arrays(
        self, arrays: dict[str, np.ndarray], dram_extra: float
    ) -> float:
        """Vectorized :meth:`_demand`: every thread's IPC and miss
        bandwidth in whole-column operations, reduced with sequential adds
        (bitwise the scalar thread loop)."""
        noc = self.config.noc
        core = self.core_model.config
        onchip = (
            2.0 * noc.hop_latency * arrays["mean_hops"]
            + self.config.cache.bank_latency
        )
        mem_lat = (
            2.0 * noc.hop_latency * arrays["mc_hops"]
            + self.config.memory.zero_load_latency
            + dram_extra
        )
        offchip = arrays["miss_ratio"] * mem_lat
        exposed = onchip / core.mlp_onchip + offchip / core.mlp_offchip
        cpi = arrays["base_cpi"] + (arrays["apki"] / 1000.0) * exposed
        ipc = 1.0 / cpi
        mpki = arrays["apki"] * arrays["miss_ratio"]
        misses_per_cycle = ipc * mpki / 1000.0
        terms = (
            misses_per_cycle
            * CACHE_LINE_BYTES
            * (1.0 + arrays["write_fraction"])
        )
        return float(np.cumsum(terms)[-1]) if len(terms) else 0.0

    def _demand(self, geometry: list[dict], dram_extra: float) -> float:
        """DRAM bytes/cycle demanded at the given extra latency."""
        if use_vectorized() and geometry:
            return self._demand_from_arrays(
                self._geometry_arrays(geometry), dram_extra
            )
        demand = 0.0
        for geo in geometry:
            ipc = self._thread_ipc(geo, dram_extra)
            profile = geo["profile"]
            mpki = profile.llc_apki * geo["miss_ratio"]
            misses_per_cycle = ipc * mpki / 1000.0
            demand += (
                misses_per_cycle
                * CACHE_LINE_BYTES
                * (1.0 + profile.write_fraction)
            )
        return demand

    def _solve_bandwidth_fixed_point(self, geometry: list[dict]) -> float:
        dram_extra = 0.0
        if use_vectorized() and geometry:
            # Build the (T,) columns once; 25 damped iterations then run as
            # pure array math.
            arrays = self._geometry_arrays(geometry)
            for _ in range(self.iterations):
                demand = self._demand_from_arrays(arrays, dram_extra)
                target = self.dram.queueing_delay(demand)
                dram_extra = (
                    self.damping * dram_extra + (1.0 - self.damping) * target
                )
            return dram_extra
        for _ in range(self.iterations):
            demand = self._demand(geometry, dram_extra)
            target = self.dram.queueing_delay(demand)
            dram_extra = (
                self.damping * dram_extra + (1.0 - self.damping) * target
            )
        return dram_extra

    def _demand_rows(
        self, stacked: dict[str, np.ndarray], dram_extra: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`_demand_from_arrays` over (B, T) stacks: the
        same elementwise expressions with a per-row extra latency, reduced
        per row with sequential adds (cumsum along the thread axis), so
        row *b* is bitwise the single-item column reduction."""
        noc = self.config.noc
        core = self.core_model.config
        onchip = (
            2.0 * noc.hop_latency * stacked["mean_hops"]
            + self.config.cache.bank_latency
        )
        mem_lat = (
            2.0 * noc.hop_latency * stacked["mc_hops"]
            + self.config.memory.zero_load_latency
            + dram_extra[:, None]
        )
        offchip = stacked["miss_ratio"] * mem_lat
        exposed = onchip / core.mlp_onchip + offchip / core.mlp_offchip
        cpi = stacked["base_cpi"] + (stacked["apki"] / 1000.0) * exposed
        ipc = 1.0 / cpi
        mpki = stacked["apki"] * stacked["miss_ratio"]
        misses_per_cycle = ipc * mpki / 1000.0
        terms = (
            misses_per_cycle
            * CACHE_LINE_BYTES
            * (1.0 + stacked["write_fraction"])
        )
        return np.cumsum(terms, axis=1)[:, -1]

    def _solve_bandwidth_fixed_point_rows(
        self, stacked: dict[str, np.ndarray]
    ) -> np.ndarray:
        """The damped fixed point for B same-thread-count evaluations at
        once.  Rows never interact: demand, queueing delay, and damping are
        all elementwise, so row *b* walks the exact float64 trajectory of
        :meth:`_solve_bandwidth_fixed_point` on item *b* alone."""
        rows = next(iter(stacked.values())).shape[0]
        dram_extra = np.zeros(rows, dtype=np.float64)
        for _ in range(self.iterations):
            demand = self._demand_rows(stacked, dram_extra)
            target = self.dram.queueing_delay_batch(demand)
            dram_extra = (
                self.damping * dram_extra + (1.0 - self.damping) * target
            )
        return dram_extra

    # -- step 3: assemble the evaluation --------------------------------------

    def _finalize(
        self,
        mix: Mix,
        problem: PlacementProblem,
        result: SchemeResult,
        geometry: list[dict],
        dram_extra: float,
    ) -> MixEvaluation:
        noc = self.config.noc
        has_monitors = result.name not in ("S-NUCA", "R-NUCA")
        data_flits = noc.flits_for_bytes(CACHE_LINE_BYTES)
        threads: list[ThreadPerf] = []
        for geo in geometry:
            profile = geo["profile"]
            onchip, offchip = self._access_latency(geo, dram_extra)
            ipc = self._thread_ipc(geo, dram_extra)
            apki = profile.llc_apki
            mpki = apki * geo["miss_ratio"]
            # L2<->LLC: request (1 flit) + data response, plus L2 writebacks.
            l2_llc = apki * (1 + data_flits) * geo["mean_hops"]
            l2_llc += apki * profile.write_fraction * data_flits * geo["mean_hops"]
            # LLC<->Mem: miss request + fill + dirty writebacks to memory.
            llc_mem = mpki * (1 + data_flits) * geo["mc_hops"]
            llc_mem += mpki * profile.write_fraction * data_flits * geo["mc_hops"]
            # Other: monitor samples routed to the VC's fixed GMON location.
            other = 0.0
            if has_monitors:
                other = apki * MONITOR_SAMPLE_RATE * geo["mean_hops"]
            threads.append(
                ThreadPerf(
                    thread_id=geo["thread"].thread_id,
                    process_id=geo["process_id"],
                    app=profile.name,
                    core=geo["core"],
                    ipc=ipc,
                    cpi=1.0 / ipc,
                    apki=apki,
                    mpki=mpki,
                    mean_hops=geo["mean_hops"],
                    onchip_latency=onchip,
                    offchip_latency=offchip,
                    traffic_pki={
                        TrafficClass.L2_LLC.value: l2_llc,
                        TrafficClass.LLC_MEM.value: llc_mem,
                        TrafficClass.OTHER.value: other,
                    },
                )
            )

        process_perf: dict[int, float] = {}
        process_app: dict[int, str] = {}
        for proc in mix.processes:
            ipcs = [t.ipc for t in threads if t.process_id == proc.process_id]
            process_app[proc.process_id] = proc.profile.name
            if len(ipcs) == 1:
                process_perf[proc.process_id] = ipcs[0]
            else:
                # Barrier-limited data-parallel progress: harmonic mean.
                process_perf[proc.process_id] = len(ipcs) / sum(
                    1.0 / i for i in ipcs
                )

        total_ipc = sum(t.ipc for t in threads)

        def weighted(key: str) -> float:
            if total_ipc <= 0:
                return 0.0
            return (
                sum(t.ipc * t.traffic_pki[key] / 1000.0 for t in threads)
                / total_ipc
            )
        flit_hops_per_instr = sum(
            weighted(cls.value) for cls in TrafficClass
        )
        llc_accesses_per_instr = (
            sum(t.ipc * t.apki / 1000.0 for t in threads) / total_ipc
            if total_ipc
            else 0.0
        )
        dram_accesses_per_instr = (
            sum(t.ipc * t.mpki / 1000.0 for t in threads) / total_ipc
            if total_ipc
            else 0.0
        )
        energy = energy_per_instruction(
            self.energy_params,
            aggregate_cpi=1.0 / total_ipc if total_ipc > 0 else 1.0,
            llc_accesses_per_instr=llc_accesses_per_instr,
            flit_hops_per_instr=flit_hops_per_instr,
            dram_accesses_per_instr=dram_accesses_per_instr,
        )
        demand = self._demand(geometry, dram_extra)
        return MixEvaluation(
            scheme=result.name,
            threads=threads,
            process_perf=process_perf,
            process_app=process_app,
            dram_extra_latency=dram_extra,
            dram_utilization=self.dram.utilization(demand),
            energy=energy,
        )
