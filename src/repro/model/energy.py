"""Energy model: per-event energies in the spirit of McPAT @ 22 nm.

Fig 11e breaks energy per instruction into Static / Core / Net / LLC / Mem.
The breakdown *shape* across schemes is driven by relative event energies
and by runtime (static energy accrues per cycle, so faster schemes amortize
it over more instructions) — which is what these constants capture.  They
are calibrated so the 64-tile chip lands in the paper's 80-130 W envelope
(Sec V) with a static share consistent with lean-core designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import CORE_CLOCK_HZ


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nJ) and static power (W)."""

    static_watts: float = 48.0  # chip leakage + clocks + DRAM background
    core_nj_per_instr: float = 0.17  # lean 2-way OOO dynamic energy
    llc_nj_per_access: float = 0.85  # 512 KB bank read/write
    noc_nj_per_flit_hop: float = 0.045  # router + link traversal, 128-bit flit
    dram_nj_per_access: float = 17.0  # 64 B line transfer + activate share
    clock_hz: int = CORE_CLOCK_HZ

    @property
    def static_nj_per_cycle(self) -> float:
        return self.static_watts * 1e9 / self.clock_hz


@dataclass
class EnergyBreakdown:
    """Energy per instruction (nJ), by Fig 11e category."""

    static: float = 0.0
    core: float = 0.0
    net: float = 0.0
    llc: float = 0.0
    mem: float = 0.0

    @property
    def total(self) -> float:
        return self.static + self.core + self.net + self.llc + self.mem

    def as_dict(self) -> dict[str, float]:
        return {
            "Static": self.static,
            "Core": self.core,
            "Net": self.net,
            "LLC": self.llc,
            "Mem": self.mem,
        }


def energy_per_instruction(
    params: EnergyParams,
    aggregate_cpi: float,
    llc_accesses_per_instr: float,
    flit_hops_per_instr: float,
    dram_accesses_per_instr: float,
    cores_active_fraction: float = 1.0,
) -> EnergyBreakdown:
    """Chip-wide energy per instruction.

    *aggregate_cpi* is total core-cycles per instruction across the chip
    (1 / aggregate IPC x active cores): static energy accrues on every
    cycle of every core's clock, so slow schemes pay more per instruction.
    """
    if aggregate_cpi <= 0:
        raise ValueError("aggregate CPI must be positive")
    return EnergyBreakdown(
        static=params.static_nj_per_cycle * aggregate_cpi * cores_active_fraction,
        core=params.core_nj_per_instr,
        net=params.noc_nj_per_flit_hop * flit_hops_per_instr,
        llc=params.llc_nj_per_access * llc_accesses_per_instr,
        mem=params.dram_nj_per_access * dram_accesses_per_instr,
    )
