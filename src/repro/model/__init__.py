"""Analytic evaluation engine: per-thread performance with bandwidth
feedback, plus energy, traffic, and weighted-speedup metrics."""

from repro.model.energy import EnergyBreakdown, EnergyParams, energy_per_instruction
from repro.model.metrics import (
    gmean,
    inverse_cdf,
    normalize_to,
    per_app_speedups,
    per_process_speedups,
    weighted_speedup,
)
from repro.model.system import AnalyticSystem, MixEvaluation, ThreadPerf

__all__ = [
    "AnalyticSystem",
    "EnergyBreakdown",
    "EnergyParams",
    "MixEvaluation",
    "ThreadPerf",
    "energy_per_instruction",
    "gmean",
    "inverse_cdf",
    "normalize_to",
    "per_app_speedups",
    "per_process_speedups",
    "weighted_speedup",
]
