"""The unit of work the experiment runner schedules: one :class:`Job`.

A job wraps one simulation/experiment point — a module-level callable plus
its keyword arguments — together with the seed that makes it deterministic.
Jobs are:

* **content-addressed** — :meth:`Job.digest` hashes the callable's import
  path, the kwargs, and the seed via :func:`repro.util.hashing.content_digest`,
  so a :class:`~repro.runner.store.ResultStore` can recognize an identical
  point across runs and processes;
* **picklable** — the callable must be importable at module top level, so a
  job can cross a ``multiprocessing`` boundary;
* **self-seeding** — :meth:`Job.execute` reseeds Python's and numpy's
  *global* RNGs from the job digest before calling the function.  Experiment
  code threads explicit seeds everywhere, but this guarantees that even
  accidental global-RNG use cannot make results depend on which worker runs
  the job or in what order — the property behind ``--jobs 4`` being bitwise
  identical to ``--jobs 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Mapping

import repro
from repro.util.hashing import content_digest
from repro.util.rng import reseed_global


@dataclass(frozen=True)
class Job:
    """One experiment point: ``fn(**kwargs)`` under a deterministic seed.

    ``fn`` must be a module-level function (picklable by reference).  The
    kwargs and *seed* are the job's content identity; *label* is only for
    progress display and never hashed.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    label: str = ""

    @cached_property
    def _digest(self) -> str:
        return content_digest(
            repro.__version__, self.fn, dict(self.kwargs), self.seed
        )

    def digest(self) -> str:
        """Stable content hash of (package version, callable, kwargs, seed).

        The package version salts the hash so releases never read caches
        written by older code.  The hash does NOT cover arbitrary source
        edits between releases — after changing simulation code in place,
        clear the cache directory (or pass ``--no-cache``).
        """
        return self._digest

    def execute(self) -> Any:
        """Run the job in the current process.

        Global RNG state is reseeded deterministically from the digest so a
        job's result never depends on scheduling order or worker identity.
        """
        reseed_global(self.digest(), self.seed)
        return self.fn(**self.kwargs)

    def describe(self) -> str:
        return self.label or getattr(self.fn, "__name__", "job")
