"""Fans jobs out across processes, with cache short-circuiting.

:class:`ProcessPoolRunner` is the execution engine behind every sweep and
figure driver: it consults its :class:`~repro.runner.store.ResultStore`
first, dispatches only the missing points (serially for ``jobs=1``,
through a ``concurrent.futures.ProcessPoolExecutor`` otherwise), persists
completed results, and reports progress after every job.  Results come back
in submission order regardless of completion order, and every job reseeds
deterministically (:meth:`repro.runner.job.Job.execute`), so worker count
never changes the numbers — only the wall clock.
"""

from __future__ import annotations

import random
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.runner.job import Job
from repro.runner.store import MISS, NullStore, ResultStore


@dataclass
class RunnerStats:
    """Cumulative counters over a runner's lifetime (all ``map`` calls)."""

    submitted: int = 0
    completed: int = 0
    executed: int = 0
    cached: int = 0

    def summary(self) -> str:
        return (
            f"{self.completed}/{self.submitted} jobs done, "
            f"{self.cached} cache hits"
        )


def _execute(job: Job) -> Any:
    """Worker entry point (module-level so it pickles by reference)."""
    return job.execute()


@contextmanager
def _preserved_global_rng():
    """Save/restore the global RNG streams around in-process execution.

    ``Job.execute`` reseeds the global RNGs for determinism; when jobs run
    in the caller's process (``jobs=1``), that must not clobber whatever
    seed the caller established for their own code.
    """
    # Pure save/restore of the caller's streams — it draws nothing and
    # leaves the global state bitwise as found, so it cannot perturb
    # results; reviewed exceptions to the determinism rule.
    py_state = random.getstate()  # repro: allow[determinism]
    np_state = np.random.get_state()  # repro: allow[determinism]
    try:
        yield
    finally:
        random.setstate(py_state)  # repro: allow[determinism]
        np.random.set_state(np_state)  # repro: allow[determinism]


class ProcessPoolRunner:
    """Runs jobs across *jobs* worker processes with result memoization.

    ``jobs=1`` (the default) executes in-process with zero multiprocessing
    overhead; any higher value fans uncached jobs out to a process pool.
    *store* defaults to a :class:`NullStore` (no caching); pass a
    :class:`ResultStore` to memoize results on disk.  *progress*, if given,
    is called with the cumulative :class:`RunnerStats` after every job
    completes (from cache or from execution).
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | NullStore | None = None,
        progress: Callable[[RunnerStats], None] | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")
        self.jobs = jobs
        self.store = store if store is not None else NullStore()
        self.progress = progress
        self.stats = RunnerStats()

    # -- public API ----------------------------------------------------------

    def run(self, job: Job) -> Any:
        """Run a single job (through the cache)."""
        return self.map([job])[0]

    def map(self, jobs: Sequence[Job]) -> list[Any]:
        """Run *jobs*, returning their results in submission order."""
        jobs = list(jobs)
        self.stats.submitted += len(jobs)
        results: list[Any] = [None] * len(jobs)
        pending: list[int] = []
        for i, job in enumerate(jobs):
            value = self.store.load(job.digest())
            if value is not MISS:
                results[i] = value
                self._advance(cached=True)
            else:
                pending.append(i)
        if not pending:
            return results
        self._execute_pending(jobs, pending, results)
        return results

    def _execute_pending(
        self, jobs: list[Job], pending: list[int], results: list[Any]
    ) -> None:
        """Execute the cache-missing *pending* indices into *results*.

        The override point for batching runners: everything above this
        (cache probing, ordering, stats) is shared; everything below is
        how the missing work actually runs.
        """
        if self.jobs == 1 or len(pending) == 1:
            with _preserved_global_rng():
                for i in pending:
                    results[i] = self._finish(jobs[i], _execute(jobs[i]))
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_execute, jobs[i]): i for i in pending}
                done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
                for future in not_done:
                    future.cancel()
                # In-flight jobs cannot be cancelled; collect them too so
                # their results are persisted rather than dropped.
                in_flight = [f for f in not_done if not f.cancelled()]
                if in_flight:
                    done |= wait(in_flight)[0]
                # Persist every completed sibling before re-raising a
                # failure, so a rerun after fixing one bad point does not
                # recompute the points that already succeeded.
                first_error: BaseException | None = None
                for future in done:
                    if future.cancelled():
                        continue
                    error = future.exception()
                    if error is not None:
                        first_error = first_error or error
                        continue
                    results[futures[future]] = self._finish(
                        jobs[futures[future]], future.result()
                    )
                if first_error is not None:
                    raise first_error

    # -- internals -----------------------------------------------------------

    def _finish(self, job: Job, value: Any) -> Any:
        self.store.store(job.digest(), value)
        self._advance(cached=False)
        return value

    def _advance(self, cached: bool) -> None:
        self.stats.completed += 1
        if cached:
            self.stats.cached += 1
        else:
            self.stats.executed += 1
        if self.progress is not None:
            self.progress(self.stats)


def run_jobs(
    jobs: Sequence[Job], runner: ProcessPoolRunner | None = None
) -> list[Any]:
    """Run *jobs* through *runner*, or serially/uncached when none given.

    This is the single entry point the experiment harnesses use, so every
    figure driver transparently gains ``--jobs``/caching when the CLI (or a
    test) supplies a configured runner.
    """
    runner = runner if runner is not None else ProcessPoolRunner()
    return runner.map(jobs)
