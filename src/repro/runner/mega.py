"""Cross-job mega-batching: stack compatible jobs into one kernel pass.

:class:`~repro.runner.pool.ProcessPoolRunner` executes one
:class:`~repro.runner.job.Job` at a time, so a warm fig11–18 sweep pays
per-job pickling, per-job process-pool spin-up, and per-mix kernel
dispatch.  :class:`MegaBatchRunner` removes all three:

* job bodies registered with :func:`register_batchable` declare which
  kwarg varies per job (the *slice*) and a ``batch_fn`` that evaluates
  many slices in one call, stacking them on a leading batch axis inside
  the kernels (bitwise-identical per slice — each slice reseeds exactly
  as :meth:`Job.execute` would);
* jobs are grouped by *chip digest* — the content hash of everything
  except the slice — so only genuinely same-chip jobs ever share a
  batch;
* groups are chunked contiguously across a **persistent** process pool
  (no per-``map`` executor churn), and each group's hot read-only
  arrays travel once through the :class:`SharedArrayPool` instead of
  being pickled per job.

Results are still persisted under each original job's digest, so the
cache stays interchangeable with the per-job path, and
``REPRO_MEGA_BATCH=0`` (or :func:`repro.kernels.per_mix_reference`)
reverts to the classic runner behavior.
"""

from __future__ import annotations

import atexit
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.kernels import use_mega_batch
from repro.runner.job import Job
from repro.runner.pool import ProcessPoolRunner, _preserved_global_rng
from repro.runner.shm import SegmentHandle, SharedArrayPool, attach
from repro.runner.store import NullStore, ResultStore
from repro.util.hashing import content_digest


@dataclass(frozen=True)
class BatchableSpec:
    """How to stack jobs of one registered function.

    ``batch_fn(slices, digests, **shared_kwargs)`` must return one
    payload per slice, each bitwise-identical to running the original
    function on that slice alone under :meth:`Job.execute`'s reseeding
    (the per-slice digest is passed so the batch body can reproduce it).
    *array_bank* (optional) extracts the group's hot read-only arrays
    for shared-memory publication; *install_bank* installs the attached
    views into worker-process caches before the batch body runs.
    """

    batch_fn: Callable[..., list]
    slice_param: str
    array_bank: Callable[[Mapping[str, Any]], Mapping[str, np.ndarray]] | None = None
    install_bank: Callable[[Mapping[str, Any], Mapping[str, np.ndarray]], None] | None = None


_BATCHABLE: dict[Callable, BatchableSpec] = {}


def register_batchable(
    fn: Callable,
    *,
    batch_fn: Callable[..., list],
    slice_param: str,
    array_bank: Callable[..., Mapping[str, np.ndarray]] | None = None,
    install_bank: Callable[..., None] | None = None,
) -> None:
    """Declare *fn* mega-batchable (see :class:`BatchableSpec`)."""
    _BATCHABLE[fn] = BatchableSpec(
        batch_fn=batch_fn,
        slice_param=slice_param,
        array_bank=array_bank,
        install_bank=install_bank,
    )


def batchable_spec(fn: Callable) -> BatchableSpec | None:
    return _BATCHABLE.get(fn)


def _run_mega_chunk(
    fn: Callable,
    slices: list,
    digests: list[str],
    shared_kwargs: dict,
    bank_handle: SegmentHandle | None,
) -> list:
    """Worker entry point for one contiguous chunk of a group."""
    spec = _BATCHABLE[fn]
    if bank_handle is not None and spec.install_bank is not None:
        # Views are installed into process-lifetime caches, so the
        # attachment is deliberately never detached here; the worker's
        # atexit hook closes the mapping.
        spec.install_bank(shared_kwargs, attach(bank_handle))
    payloads = spec.batch_fn(slices, digests, **shared_kwargs)
    if len(payloads) != len(slices):
        raise RuntimeError(
            f"batch body for {fn.__name__} returned {len(payloads)} payloads "
            f"for {len(slices)} slices"
        )
    return payloads


class MegaBatchRunner(ProcessPoolRunner):
    """A :class:`ProcessPoolRunner` that stacks compatible jobs.

    Drop-in compatible: unregistered jobs (and singleton groups) run
    exactly as the base runner would.  Registered jobs that share a chip
    digest are dispatched as stacked batches over a persistent worker
    pool, with group-shared arrays published once to shared memory.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | NullStore | None = None,
        progress: Callable | None = None,
    ):
        super().__init__(jobs=jobs, store=store, progress=progress)
        self._executor: ProcessPoolExecutor | None = None
        self.shm = SharedArrayPool()
        atexit.register(self.close)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the persistent pool down and reclaim shared segments."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self.shm.close()

    def __enter__(self) -> "MegaBatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _executor_or_spawn(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- execution -----------------------------------------------------------

    def _execute_pending(
        self, jobs: list[Job], pending: list[int], results: list[Any]
    ) -> None:
        if not use_mega_batch():
            return super()._execute_pending(jobs, pending, results)
        groups, singles = self._group_pending(jobs, pending)
        for idxs in groups:
            self._run_group(jobs, idxs, results)
        if singles:
            super()._execute_pending(jobs, singles, results)

    def _group_pending(
        self, jobs: list[Job], pending: list[int]
    ) -> tuple[list[list[int]], list[int]]:
        """Split pending indices into same-chip groups and leftovers."""
        buckets: dict[tuple, list[int]] = {}
        singles: list[int] = []
        for i in pending:
            job = jobs[i]
            spec = _BATCHABLE.get(job.fn)
            if spec is None or spec.slice_param not in job.kwargs:
                singles.append(i)
                continue
            shared = {
                k: v for k, v in job.kwargs.items() if k != spec.slice_param
            }
            key = (job.fn, job.seed, content_digest(shared))
            buckets.setdefault(key, []).append(i)
        groups = []
        for idxs in buckets.values():
            if len(idxs) > 1:
                groups.append(idxs)
            else:
                singles.extend(idxs)
        singles.sort()
        return groups, singles

    def _run_group(
        self, jobs: list[Job], idxs: list[int], results: list[Any]
    ) -> None:
        job0 = jobs[idxs[0]]
        spec = _BATCHABLE[job0.fn]
        shared = {
            k: v for k, v in job0.kwargs.items() if k != spec.slice_param
        }
        slices = [jobs[i].kwargs[spec.slice_param] for i in idxs]
        digests = [jobs[i].digest() for i in idxs]
        if self.jobs == 1:
            with _preserved_global_rng():
                payloads = _run_mega_chunk(
                    job0.fn, slices, digests, shared, None
                )
            for i, payload in zip(idxs, payloads):
                results[i] = self._finish(jobs[i], payload)
            return

        bank_handle = None
        if spec.array_bank is not None:
            bank = dict(spec.array_bank(shared))
            if bank:
                bank_handle = self.shm.publish(
                    content_digest("array-bank", job0.fn, shared), bank
                )
        n_chunks = min(self.jobs, len(idxs))
        base, extra = divmod(len(idxs), n_chunks)
        chunks: list[list[int]] = []
        start = 0
        for c in range(n_chunks):
            stop = start + base + (1 if c < extra else 0)
            chunks.append(idxs[start:stop])
            start = stop
        executor = self._executor_or_spawn()
        try:
            futures = {
                executor.submit(
                    _run_mega_chunk,
                    job0.fn,
                    [jobs[i].kwargs[spec.slice_param] for i in chunk],
                    [jobs[i].digest() for i in chunk],
                    shared,
                    bank_handle,
                ): chunk
                for chunk in chunks
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            in_flight = [f for f in not_done if not f.cancelled()]
            if in_flight:
                done |= wait(in_flight)[0]
            first_error: BaseException | None = None
            for future in done:
                error = future.exception()
                if error is not None:
                    first_error = first_error or error
                    continue
                for i, payload in zip(futures[future], future.result()):
                    results[i] = self._finish(jobs[i], payload)
            if first_error is not None:
                raise first_error
        except BrokenProcessPool:
            # A worker died mid-batch; drop the poisoned pool so the next
            # map() starts clean, then surface the failure.
            self._discard_executor()
            raise
