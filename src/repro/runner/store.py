"""On-disk result cache keyed by job content digests.

A :class:`ResultStore` memoizes completed job outputs so re-running a sweep
only executes the points whose (config, workload, scheme, seed) actually
changed — the incremental-recomputation primitive that related systems
(CoT's elastic caches, DistCache's storage tiers; see PAPERS.md) build
their scaling stories on.

Entries are pickle files named by digest under a two-level fan-out
directory (``ab/abcdef....pkl``).  Writes are atomic (temp file + rename)
so parallel workers and concurrent runs never observe half-written
entries; loads verify the entry's recorded digest and treat any unpickling
failure as a miss, deleting the corrupt file so the point is simply
recomputed (corruption recovery, not an error).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Sentinel distinguishing "miss" from a cached ``None`` result.
MISS = object()

#: Default location of the content-hashed result cache — the single
#: source of truth the CLI, :class:`repro.api.Session`, and docs share.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump when the entry layout changes; old entries then read as misses.
_FORMAT = 1


@dataclass
class StoreStats:
    """Hit/miss counters for one store's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evicted_corrupt=self.evicted_corrupt,
        )


class ResultStore:
    """Content-addressed pickle cache rooted at *root* (created lazily)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.stats = StoreStats()

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def load(self, digest: str) -> Any:
        """Return the cached value for *digest*, or :data:`MISS`.

        A corrupted or mismatched entry is deleted and reported as a miss.
        """
        path = self.path(digest)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            if (
                not isinstance(entry, dict)
                or entry.get("format") != _FORMAT
                or entry.get("digest") != digest
                or "payload" not in entry
            ):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except Exception:
            # Truncated pickle, stale format, digest mismatch, unreadable
            # file: recover by evicting and recomputing.
            self.stats.misses += 1
            self.stats.evicted_corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.stats.hits += 1
        return entry["payload"]

    def store(self, digest: str, value: Any) -> None:
        """Persist *value* under *digest* atomically."""
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": _FORMAT, "digest": digest, "payload": value}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.pkl"))


class NullStore:
    """A store that never hits and never persists (``--no-cache``)."""

    def __init__(self) -> None:
        self.stats = StoreStats()

    def load(self, digest: str) -> Any:
        self.stats.misses += 1
        return MISS

    def store(self, digest: str, value: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0
