"""Zero-copy shared-memory array banks for the runner's data plane.

The brain/brawn split: the parent process *plans* (which jobs, which
batches) and publishes the hot read-only arrays — geometry matrices,
miss-curve banks, per-group problem arrays — into POSIX shared memory
exactly once, addressed by content digest.  Workers *attach* read-only
views instead of unpickling private copies, so shipping a batch to a
worker costs a few hundred bytes of :class:`SegmentHandle` regardless of
how large the arrays are.

Lifecycle rules:

* **create-or-attach is idempotent** — two processes racing to publish
  the same digest converge on one segment.  The payload is written before
  the 8-byte ready magic, and racing writers write identical bytes (the
  name *is* the content hash), so a late attacher that finds the magic
  missing can safely finish the write itself.
* **segments are refcounted per process** — :func:`attach` /
  :func:`detach` keep one mapping per segment name; the last detach
  closes it.
* **the owner unlinks** — :meth:`SharedArrayPool.close` (also registered
  ``atexit``) unlinks every segment this process created.  Crashed
  *workers* hold only attachments, which the OS reclaims with the
  process; a crashed *owner* is covered by the stdlib resource tracker,
  which still has the creator-side registration and unlinks at exit.
* **graceful fallback** — when ``/dev/shm`` is unavailable (or
  ``REPRO_NO_SHM=1``), handles carry the pickled arrays inline and
  everything degrades to the classic copy-per-worker behavior.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.util.guards import guarded_mapping

#: Written at offset 0 *after* the payload: attachers spin on it so a
#: partially written segment is never read.
_MAGIC = b"RPROSHM1"
_HEADER_BYTES = 64
_ALIGN = 64

#: Kill switch: ``REPRO_NO_SHM=1`` forces the inline-pickle fallback.
_ENV_DISABLE = "REPRO_NO_SHM"

#: Segment-name prefix; cleanup tooling may sweep ``/dev/shm/repro-*``.
NAME_PREFIX = "repro-"

#: How long an attacher waits for a racing creator before taking over
#: the write itself.
READY_TIMEOUT = 5.0

_BROKEN = False  # set after the first OS-level shared-memory failure


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentHandle:
    """Picklable address of one published array bank.

    ``name is None`` marks the pickling fallback: *inline* then holds the
    serialized arrays and no shared memory is involved.
    """

    digest: str
    name: str | None
    size: int
    arrays: tuple[ArraySpec, ...]
    inline: bytes | None = None


def shm_enabled() -> bool:
    """Whether new publishes will even try POSIX shared memory."""
    return os.environ.get(_ENV_DISABLE, "") != "1" and not _BROKEN


def _segment_name(digest: str) -> str:
    return f"{NAME_PREFIX}{digest[:32]}"


def _layout(
    arrays: Mapping[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], tuple[ArraySpec, ...], int]:
    """Contiguous copies, per-array specs, and the total segment size."""
    contiguous = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
    specs = []
    offset = _HEADER_BYTES
    for key, arr in contiguous.items():
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append(ArraySpec(key, arr.dtype.str, arr.shape, offset))
        offset += arr.nbytes
    return contiguous, tuple(specs), offset


def _write_payload(
    segment: shared_memory.SharedMemory,
    contiguous: Mapping[str, np.ndarray],
    specs: tuple[ArraySpec, ...],
) -> None:
    """Write arrays then the ready magic (in that order — the magic is
    the publication barrier)."""
    for spec in specs:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        view[...] = contiguous[spec.key]
    segment.buf[: len(_MAGIC)] = _MAGIC


def _is_ready(segment: shared_memory.SharedMemory) -> bool:
    return bytes(segment.buf[: len(_MAGIC)]) == _MAGIC


def _wait_ready(
    segment: shared_memory.SharedMemory, timeout: float = READY_TIMEOUT
) -> bool:
    """Spin (with backoff) until the creator publishes the ready magic."""
    deadline = time.monotonic() + timeout
    delay = 1e-4
    while not _is_ready(segment):
        if time.monotonic() >= deadline:
            return False
        time.sleep(delay)
        delay = min(delay * 2, 0.01)
    return True


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.

    Python <= 3.12 registers every attachment with the resource tracker
    as if it were a creation.  Our workers share the parent's tracker
    process (fork inherits it), whose cache is a per-name set: duplicate
    registrations collapse, and the owner's single ``unlink()`` clears
    the entry, so attach-side registrations are harmless dedup — and
    manually unregistering here would erase the *creator's* entry (same
    set!), both breaking the crashed-owner safety net and making the
    owner's unlink-time unregister a noisy tracker KeyError."""
    return shared_memory.SharedMemory(name=name)


def _inline_handle(digest: str, arrays: Mapping[str, np.ndarray]) -> SegmentHandle:
    payload = pickle.dumps(dict(arrays), protocol=pickle.HIGHEST_PROTOCOL)
    return SegmentHandle(digest, None, len(payload), (), inline=payload)


class SharedArrayPool:
    """Owner-side registry of published, content-addressed segments.

    One pool per publishing process; the runner owns one and closes it
    (unlinking every segment it created) at shutdown.  ``publish`` is
    memoized by digest, so re-publishing the same bank is free.
    """

    def __init__(self) -> None:
        self._handles: dict[str, SegmentHandle] = {}
        self._segments: dict[str, tuple[shared_memory.SharedMemory, bool]] = {}
        atexit.register(self.close)

    def publish(
        self, digest: str, arrays: Mapping[str, np.ndarray]
    ) -> SegmentHandle:
        """Place *arrays* into the segment addressed by *digest*.

        Create-or-attach: if another process (or an earlier crash) already
        materialized the segment, this attaches and — if the ready magic
        is absent past :data:`READY_TIMEOUT` — finishes the identical
        write itself.  Falls back to an inline-pickle handle when shared
        memory is unavailable."""
        global _BROKEN
        cached = self._handles.get(digest)
        if cached is not None:
            return cached
        contiguous, specs, size = _layout(arrays)
        if not shm_enabled():
            handle = _inline_handle(digest, contiguous)
            self._handles[digest] = handle
            return handle
        name = _segment_name(digest)
        created = False
        try:
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                created = True
            except FileExistsError:
                segment = _attach_segment(name)
        except OSError:
            _BROKEN = True
            handle = _inline_handle(digest, contiguous)
            self._handles[digest] = handle
            return handle
        if segment.size < size:
            # A stale segment from an incompatible layout (should not
            # happen for content-addressed names); don't fight over it.
            segment.close()
            handle = _inline_handle(digest, contiguous)
            self._handles[digest] = handle
            return handle
        if created or not _wait_ready(segment):
            _write_payload(segment, contiguous, specs)
        handle = SegmentHandle(digest, name, size, specs)
        self._handles[digest] = handle
        self._segments[digest] = (segment, created)
        return handle

    def close(self) -> None:
        """Close every mapping and unlink the segments this pool created.

        Idempotent, and the pool stays usable — a later ``publish``
        simply re-creates segments."""
        segments, self._segments = self._segments, {}
        self._handles.clear()
        for segment, created in segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live local views
                pass
            if created:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- worker-side attachment --------------------------------------------------

#: Guards the attachment refcounts: attach/detach also run on the
#: service's solver threads, where two threads materializing the same
#: bank concurrently must not double-map (or double-close) a segment.
#: Registered in ``tools/analyze``'s lock-discipline state registry.
_ATTACH_LOCK = threading.Lock()

#: name -> [segment, refcount]; one mapping per segment per process.
_ATTACHMENTS: dict[str, list] = guarded_mapping(_ATTACH_LOCK, "_ATTACHMENTS")


def attach(handle: SegmentHandle) -> dict[str, np.ndarray]:
    """Materialize a handle's arrays in this process.

    Every returned array is **read-only**: shared-memory handles return
    zero-copy views backed by the segment, and inline handles unpickle
    private copies frozen to the same contract (mutating an attached
    bank is a bug everywhere, not just where it is also a race).  Pair
    each attach with a :func:`detach` (views must no longer be used
    after)."""
    if handle.name is None:
        assert handle.inline is not None
        arrays = pickle.loads(handle.inline)
        for arr in arrays.values():
            if isinstance(arr, np.ndarray):
                arr.flags.writeable = False
        return arrays
    with _ATTACH_LOCK:
        entry = _ATTACHMENTS.get(handle.name)
        if entry is None:
            segment = _attach_segment(handle.name)
            if not _wait_ready(segment):
                segment.close()
                raise TimeoutError(
                    f"shared segment {handle.name!r} never became ready"
                )
            entry = _ATTACHMENTS[handle.name] = [segment, 0]
        segment = entry[0]
        entry[1] += 1
    views: dict[str, np.ndarray] = {}
    for spec in handle.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        views[spec.key] = view
    return views


def detach(handle: SegmentHandle) -> None:
    """Drop one attachment reference; the last one closes the mapping."""
    if handle.name is None:
        return
    with _ATTACH_LOCK:
        entry = _ATTACHMENTS.get(handle.name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] > 0:
            return
        del _ATTACHMENTS[handle.name]
        segment = entry[0]
    try:
        segment.close()
    except BufferError:  # pragma: no cover - caller kept views alive
        pass


def _close_attachments() -> None:  # pragma: no cover - exit path
    with _ATTACH_LOCK:
        entries = list(_ATTACHMENTS.values())
        _ATTACHMENTS.clear()
    for entry in entries:
        try:
            entry[0].close()
        except BufferError:
            pass


atexit.register(_close_attachments)
