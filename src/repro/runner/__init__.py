"""Parallel experiment runner with content-hashed result caching.

The sweep structure of every figure reproduction is embarrassingly
parallel: N mixes x M schemes, each point fully determined by
``(SystemConfig, workload mix, scheme, seed)``.  This package exploits
that:

* :class:`Job` — one simulation/experiment point (a picklable module-level
  callable + kwargs + seed), content-hashed for identity;
* :class:`ResultStore` — an on-disk cache of completed job outputs keyed by
  that hash, with atomic writes and corrupted-entry recovery;
* :class:`ProcessPoolRunner` — fans uncached jobs out across
  ``multiprocessing`` workers with deterministic per-job RNG seeding, so
  ``--jobs 4`` is bitwise identical to ``--jobs 1`` and a warm cache
  executes zero jobs.

See docs/ARCHITECTURE.md for how a sweep flows through the runner.
"""

from repro.runner.job import Job
from repro.runner.mega import (
    BatchableSpec,
    MegaBatchRunner,
    batchable_spec,
    register_batchable,
)
from repro.runner.pool import ProcessPoolRunner, RunnerStats, run_jobs
from repro.runner.shm import SegmentHandle, SharedArrayPool
from repro.runner.store import (
    DEFAULT_CACHE_DIR,
    MISS,
    NullStore,
    ResultStore,
    StoreStats,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "BatchableSpec",
    "Job",
    "MISS",
    "MegaBatchRunner",
    "NullStore",
    "ProcessPoolRunner",
    "ResultStore",
    "RunnerStats",
    "SegmentHandle",
    "SharedArrayPool",
    "StoreStats",
    "batchable_spec",
    "register_batchable",
    "run_jobs",
]
