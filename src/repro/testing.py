"""Shared test/benchmark fixtures: the one import point.

``tests/`` and ``benchmarks/`` grew separate copies of the same
scaffolding — the golden fig11 mix, the small 4x4 problem, the bitwise
equality assertion, the env-configured runner.  They live here now so
both conftests (and any module) import one definition; drift between the
suites was a real bug class (a "golden" mix that differed by seed would
silently pin two different chips).

Nothing here is imported by library code — ``repro.testing`` depends on
the library, never the reverse.
"""

from __future__ import annotations

import os

from repro.config import default_config, small_test_config
from repro.nuca.base import build_problem
from repro.runner import ProcessPoolRunner, ResultStore
from repro.workloads.mixes import random_single_threaded_mix

#: The golden fig11 mix: 64 single-threaded apps on the paper's 64-tile
#: chip (the same point tests/golden/fig11_mix0.json pins).
GOLDEN_MIX = dict(n_apps=64, seed=42, mix_id=0)


def golden_mix():
    """The golden fig11 mix object (see :data:`GOLDEN_MIX`)."""
    return random_single_threaded_mix(**GOLDEN_MIX)


def golden_problem():
    """The golden mix as a built placement problem on the paper chip."""
    return build_problem(golden_mix(), default_config())


def small_problem(apps: int = 16, side: int = 4, seed: int = 42,
                  mix_id: int = 0):
    """(problem, config) on a ``side x side`` test mesh — the cheap
    workhorse point for engine/service tests."""
    config = small_test_config(side, side)
    return build_problem(
        random_single_threaded_mix(apps, seed, mix_id), config
    ), config


def assert_solutions_equal(result, reference) -> None:
    """Placement solutions exactly equal — the ``==`` contract."""
    assert result.vc_sizes == reference.vc_sizes
    assert result.vc_allocation == reference.vc_allocation
    assert result.thread_cores == reference.thread_cores


def assert_bitwise_equal(result, reference) -> None:
    """Reconfig results (solution + op counts) exactly equal."""
    assert_solutions_equal(result.solution, reference.solution)
    assert result.counter.ops == reference.counter.ops
    assert result.step_cycles() == reference.step_cycles()


def make_runner() -> ProcessPoolRunner:
    """Build a job runner from ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``.

    The benchmark suite's runner: fan out over ``REPRO_JOBS`` worker
    processes (default 1; results identical at any N) and, when
    ``REPRO_CACHE_DIR`` is set, memoize points in the content-hashed
    result cache.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
    store = ResultStore(cache_dir) if cache_dir else None
    return ProcessPoolRunner(jobs=jobs, store=store)
