"""Typed service messages and the typed error hierarchy.

The wire format of the control plane is plain dataclasses: the
in-process transport passes them by reference, and every failure mode a
client can hit is a distinct :class:`ServiceError` subclass with a
stable ``code`` string — tests and callers dispatch on the type (or the
code), never on message text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sched.problem import PlacementProblem, PlacementSolution


class ServiceError(Exception):
    """Base of every typed control-plane failure."""

    code = "service_error"


class MalformedTelemetryError(ServiceError):
    """The request failed validation before touching an engine."""

    code = "malformed_telemetry"


class AdmissionError(ServiceError):
    """Rejected at the door (queue or budget), nothing was solved."""

    code = "admission_rejected"


class QueueFullError(AdmissionError):
    """The bounded request queue is at capacity."""

    code = "queue_full"


class BudgetExceededError(AdmissionError):
    """The tenant's token bucket has no credit for this request."""

    code = "budget_exceeded"


class SolveTimeoutError(ServiceError):
    """The solve overran its deadline and no last-good placement exists."""

    code = "solve_timeout"


class SolveFailedError(ServiceError):
    """The engine raised mid-solve and no last-good placement exists."""

    code = "solve_failed"


class ServiceClosedError(ServiceError):
    """The service is not accepting requests (stopped or never started)."""

    code = "service_closed"


@dataclass
class PlacementRequest:
    """One epoch's telemetry from a chip: "here is what my monitors see,
    where should data and threads go for the coming interval?"

    *problem* is the chip's active placement problem — the VCs with their
    current miss curves and access rates plus the thread list, exactly
    what :meth:`repro.sim.engine.EpochEngine.current_problem` snapshots
    at an epoch boundary.  *epoch* is the client's own counter, echoed
    back so replies can be matched under pipelining.  *timeout_s*
    overrides the service's default solve deadline for this request.
    """

    chip_id: str
    problem: PlacementProblem
    epoch: int = 0
    timeout_s: float | None = None


@dataclass
class PlacementReply:
    """The control plane's answer to one :class:`PlacementRequest`.

    ``status`` is ``"ok"`` for a fresh solve and ``"degraded"`` when the
    service fell back to the chip's last-good placement (solve timeout or
    mid-solve failure; ``error`` then carries the triggering code).  The
    solution is always a private copy — mutating it never corrupts the
    warm engine behind it.
    """

    chip_id: str
    epoch: int
    status: str
    solution: PlacementSolution
    strategy: str = ""
    modeled_mcycles: float = 0.0
    latency_s: float = 0.0
    error: str | None = None
    #: Strategy-reported step cycles (empty for degraded replies).
    step_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def validate_telemetry(request: object) -> PlacementRequest:
    """Admission-time validation: returns the request or raises
    :class:`MalformedTelemetryError`.

    Catches the garbage a misbehaving client can send before it reaches
    a warm engine: wrong payload types, an empty thread list, thread
    access maps referencing VCs the telemetry never described, or more
    threads than the chip has cores.  (A well-formed
    :class:`~repro.sched.problem.PlacementProblem` already enforced its
    own invariants at construction; these checks are for payloads that
    never went through that constructor.)
    """
    if not isinstance(request, PlacementRequest):
        raise MalformedTelemetryError(
            f"expected PlacementRequest, got {type(request).__name__}"
        )
    if not isinstance(request.chip_id, str) or not request.chip_id:
        raise MalformedTelemetryError(
            f"chip_id must be a non-empty string, got {request.chip_id!r}"
        )
    problem = request.problem
    if not isinstance(problem, PlacementProblem):
        raise MalformedTelemetryError(
            f"telemetry payload must be a PlacementProblem, "
            f"got {type(problem).__name__}"
        )
    if not problem.threads:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: telemetry describes no threads"
        )
    if len(problem.threads) > problem.topology.tiles:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: {len(problem.threads)} threads "
            f"exceed {problem.topology.tiles} cores"
        )
    known_vcs = {vc.vc_id for vc in problem.vcs}
    for thread in problem.threads:
        unknown = set(thread.vc_accesses) - known_vcs
        if unknown:
            raise MalformedTelemetryError(
                f"chip {request.chip_id}: thread {thread.thread_id} "
                f"references unknown VCs {sorted(unknown)}"
            )
    if request.timeout_s is not None and request.timeout_s <= 0:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: timeout_s must be positive, "
            f"got {request.timeout_s!r}"
        )
    return request
