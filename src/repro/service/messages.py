"""Typed service messages and the typed error hierarchy.

The wire format of the control plane is plain dataclasses: the
in-process transport passes them by reference, and every failure mode a
client can hit is a distinct :class:`ServiceError` subclass with a
stable ``code`` string — tests and callers dispatch on the type (or the
code), never on message text.

Two telemetry shapes exist.  :class:`PlacementRequest` is the full form:
the chip's whole :class:`~repro.sched.problem.PlacementProblem` every
epoch.  :class:`DeltaTelemetry` is the streaming form: against the
digest of the chip's *last-good* problem it carries only the sketches of
VCs whose curves moved (:mod:`repro.cache.sketch`), full replacement
curves/rates for the VCs the client flagged dirty, and nothing at all
for a stationary epoch — :func:`telemetry_bytes` makes the size win
measurable.  The server answers a delta it cannot anchor (first contact,
digest mismatch, VC-set drift) with :class:`StaleTelemetryError`, and
the client falls back to full telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.miss_curve import MissCurve
from repro.cache.sketch import DEFAULT_SKETCH_BYTES, MissCurveSketch, problem_sketch_bank
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.util.hashing import content_digest


class ServiceError(Exception):
    """Base of every typed control-plane failure."""

    code = "service_error"


class MalformedTelemetryError(ServiceError):
    """The request failed validation before touching an engine."""

    code = "malformed_telemetry"


class AdmissionError(ServiceError):
    """Rejected at the door (queue or budget), nothing was solved."""

    code = "admission_rejected"


class QueueFullError(AdmissionError):
    """The bounded request queue is at capacity."""

    code = "queue_full"


class BudgetExceededError(AdmissionError):
    """The tenant's token bucket has no credit for this request."""

    code = "budget_exceeded"


class SolveTimeoutError(ServiceError):
    """The solve overran its deadline and no last-good placement exists."""

    code = "solve_timeout"


class SolveFailedError(ServiceError):
    """The engine raised mid-solve and no last-good placement exists."""

    code = "solve_failed"


class ServiceClosedError(ServiceError):
    """The service is not accepting requests (stopped or never started)."""

    code = "service_closed"


class StaleTelemetryError(ServiceError):
    """A :class:`DeltaTelemetry` could not be anchored to the chip's
    last-good problem (first contact, evicted engine, digest mismatch, or
    VC-set drift); the client must resend full telemetry."""

    code = "stale_telemetry"


@dataclass
class PlacementRequest:
    """One epoch's telemetry from a chip: "here is what my monitors see,
    where should data and threads go for the coming interval?"

    *problem* is the chip's active placement problem — the VCs with their
    current miss curves and access rates plus the thread list, exactly
    what :meth:`repro.sim.engine.EpochEngine.current_problem` snapshots
    at an epoch boundary.  *epoch* is the client's own counter, echoed
    back so replies can be matched under pipelining.  *timeout_s*
    overrides the service's default solve deadline for this request.
    """

    chip_id: str
    problem: PlacementProblem
    epoch: int = 0
    timeout_s: float | None = None


@dataclass
class DeltaTelemetry:
    """One epoch's telemetry as a delta against the chip's last-good
    problem.

    *base_digest* names the exact problem the delta patches
    (:func:`problem_digest` of the problem the service acknowledged
    last).  *sketches* carries a bounded-memory sketch per VC whose curve
    moved since then — the dirty hints; VCs absent from it are declared
    unchanged.  *dirty_curves* carries the full replacement curve for
    every sketched VC (the sketch says *that* it moved, the curve says
    *to what*), and *dirty_rates* the full replacement accessor map
    (``vc_id -> {thread_id -> rate}``) for VCs whose rates moved.  A
    stationary epoch is just the digest — a few dozen bytes.

    *dirty_clusters* carries replacement ``cluster_key`` strings for
    threads whose grouping identity changed — phased mixes rename a
    thread's benchmark when a process flips phase, and the clustered
    external scheduler reads that key, so the patched problem must
    carry it to stay content-identical to the chip's real problem.
    """

    chip_id: str
    base_digest: str
    sketches: dict[int, MissCurveSketch] = field(default_factory=dict)
    dirty_curves: dict[int, MissCurve] = field(default_factory=dict)
    dirty_rates: dict[int, dict[int, float]] = field(default_factory=dict)
    #: thread_id -> new cluster_key, only for threads whose key changed.
    dirty_clusters: dict[int, str] = field(default_factory=dict)
    epoch: int = 0
    timeout_s: float | None = None


@dataclass
class PlacementReply:
    """The control plane's answer to one :class:`PlacementRequest`.

    ``status`` is ``"ok"`` for a fresh solve and ``"degraded"`` when the
    service fell back to the chip's last-good placement (solve timeout or
    mid-solve failure; ``error`` then carries the triggering code).  The
    solution is always a private copy — mutating it never corrupts the
    warm engine behind it.
    """

    chip_id: str
    epoch: int
    status: str
    solution: PlacementSolution
    strategy: str = ""
    modeled_mcycles: float = 0.0
    latency_s: float = 0.0
    error: str | None = None
    #: Strategy-reported step cycles (empty for degraded replies).
    step_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def validate_telemetry(request: object) -> PlacementRequest:
    """Admission-time validation: returns the request or raises
    :class:`MalformedTelemetryError`.

    Catches the garbage a misbehaving client can send before it reaches
    a warm engine: wrong payload types, an empty thread list, thread
    access maps referencing VCs the telemetry never described, or more
    threads than the chip has cores.  (A well-formed
    :class:`~repro.sched.problem.PlacementProblem` already enforced its
    own invariants at construction; these checks are for payloads that
    never went through that constructor.)
    """
    if not isinstance(request, PlacementRequest):
        raise MalformedTelemetryError(
            f"expected PlacementRequest, got {type(request).__name__}"
        )
    if not isinstance(request.chip_id, str) or not request.chip_id:
        raise MalformedTelemetryError(
            f"chip_id must be a non-empty string, got {request.chip_id!r}"
        )
    problem = request.problem
    if not isinstance(problem, PlacementProblem):
        raise MalformedTelemetryError(
            f"telemetry payload must be a PlacementProblem, "
            f"got {type(problem).__name__}"
        )
    if not problem.threads:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: telemetry describes no threads"
        )
    if len(problem.threads) > problem.topology.tiles:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: {len(problem.threads)} threads "
            f"exceed {problem.topology.tiles} cores"
        )
    known_vcs = {vc.vc_id for vc in problem.vcs}
    for thread in problem.threads:
        unknown = set(thread.vc_accesses) - known_vcs
        if unknown:
            raise MalformedTelemetryError(
                f"chip {request.chip_id}: thread {thread.thread_id} "
                f"references unknown VCs {sorted(unknown)}"
            )
    if request.timeout_s is not None and request.timeout_s <= 0:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: timeout_s must be positive, "
            f"got {request.timeout_s!r}"
        )
    return request


def validate_delta_telemetry(request: object) -> DeltaTelemetry:
    """Admission-time validation of a :class:`DeltaTelemetry`.

    Shape checks only — whether the digest anchors to a live engine is
    decided later, under that chip's slot lock (the base can change
    between admission and solve)."""
    if not isinstance(request, DeltaTelemetry):
        raise MalformedTelemetryError(
            f"expected DeltaTelemetry, got {type(request).__name__}"
        )
    if not isinstance(request.chip_id, str) or not request.chip_id:
        raise MalformedTelemetryError(
            f"chip_id must be a non-empty string, got {request.chip_id!r}"
        )
    if not isinstance(request.base_digest, str) or not request.base_digest:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: base_digest must be a non-empty string"
        )
    for name, mapping, value_type in (
        ("sketches", request.sketches, MissCurveSketch),
        ("dirty_curves", request.dirty_curves, MissCurve),
        ("dirty_rates", request.dirty_rates, dict),
    ):
        if not isinstance(mapping, dict):
            raise MalformedTelemetryError(
                f"chip {request.chip_id}: {name} must be a dict, "
                f"got {type(mapping).__name__}"
            )
        for vc_id, value in mapping.items():
            if not isinstance(vc_id, int):
                raise MalformedTelemetryError(
                    f"chip {request.chip_id}: {name} key {vc_id!r} is not "
                    f"a vc id"
                )
            if not isinstance(value, value_type):
                raise MalformedTelemetryError(
                    f"chip {request.chip_id}: {name}[{vc_id}] must be "
                    f"{value_type.__name__}, got {type(value).__name__}"
                )
    unsketched = set(request.dirty_curves) - set(request.sketches)
    if unsketched:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: dirty_curves {sorted(unsketched)} "
            f"carry no sketch (every dirty hint needs one)"
        )
    for vc_id, rates in request.dirty_rates.items():
        for thread_id, rate in rates.items():
            if not isinstance(thread_id, int) or not isinstance(
                rate, (int, float)
            ) or rate < 0:
                raise MalformedTelemetryError(
                    f"chip {request.chip_id}: dirty_rates[{vc_id}] entry "
                    f"{thread_id!r}: {rate!r} is not a non-negative rate"
                )
    if not isinstance(request.dirty_clusters, dict):
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: dirty_clusters must be a dict, "
            f"got {type(request.dirty_clusters).__name__}"
        )
    for thread_id, key in request.dirty_clusters.items():
        if not isinstance(thread_id, int) or not isinstance(key, str):
            raise MalformedTelemetryError(
                f"chip {request.chip_id}: dirty_clusters entry "
                f"{thread_id!r}: {key!r} is not a thread-id -> str pair"
            )
    if request.timeout_s is not None and request.timeout_s <= 0:
        raise MalformedTelemetryError(
            f"chip {request.chip_id}: timeout_s must be positive, "
            f"got {request.timeout_s!r}"
        )
    return request


def problem_digest(problem: PlacementProblem) -> str:
    """Content digest of one chip's problem, memoized on the object.

    This is the anchor :class:`DeltaTelemetry` patches against: equal
    digests mean byte-identical telemetry content (curves, rates,
    threads, config), regardless of which process built the objects.
    """
    cached = getattr(problem, "_content_digest", None)
    if cached is None:
        cached = content_digest(problem)
        problem._content_digest = cached
    return cached


def build_delta(
    base: PlacementProblem,
    problem: PlacementProblem,
    chip_id: str,
    epoch: int = 0,
    sketch_bytes: int = DEFAULT_SKETCH_BYTES,
    dirty_threshold: float = 0.0,
    timeout_s: float | None = None,
) -> DeltaTelemetry | None:
    """Diff *problem* against *base* into a :class:`DeltaTelemetry`.

    Returns ``None`` when the chip's structure drifted (VC list, thread
    set, or LLC capacity changed) — those epochs need full telemetry.
    Curve movement is judged from the problems' sketch banks (memoized
    per problem object, so a stationary epoch diffs for free); every VC
    whose sketch delta exceeds *dirty_threshold* ships its sketch plus
    its exact replacement curve.  Threads whose ``cluster_key`` changed
    (phase flips rename the benchmark) ship the new key.  The default
    threshold 0 ships every changed curve, which keeps the server's
    patched problem content-identical to *problem* — the next epoch's
    digest then anchors without a fallback.
    """
    if [vc.vc_id for vc in base.vcs] != [vc.vc_id for vc in problem.vcs]:
        return None
    if [t.thread_id for t in base.threads] != [
        t.thread_id for t in problem.threads
    ]:
        return None
    if float(base.total_bytes) != float(problem.total_bytes):
        return None
    bank = problem_sketch_bank(problem, sketch_bytes)
    deltas = bank.deltas_to(problem_sketch_bank(base, sketch_bytes))
    base_by_id = {vc.vc_id: vc for vc in base.vcs}
    sketches: dict[int, MissCurveSketch] = {}
    dirty_curves: dict[int, MissCurve] = {}
    dirty_rates: dict[int, dict[int, float]] = {}
    for vc in problem.vcs:
        if deltas[vc.vc_id] > dirty_threshold:
            sketches[vc.vc_id] = bank.sketches[bank.index[vc.vc_id]]
            dirty_curves[vc.vc_id] = vc.miss_curve
        if vc.accesses != base_by_id[vc.vc_id].accesses:
            dirty_rates[vc.vc_id] = dict(vc.accesses)
    dirty_clusters: dict[int, str] = {
        thread.thread_id: thread.cluster_key
        for thread, old in zip(problem.threads, base.threads)
        if thread.cluster_key != old.cluster_key
    }
    return DeltaTelemetry(
        chip_id=chip_id,
        base_digest=problem_digest(base),
        sketches=sketches,
        dirty_curves=dirty_curves,
        dirty_rates=dirty_rates,
        dirty_clusters=dirty_clusters,
        epoch=epoch,
        timeout_s=timeout_s,
    )


#: Structural wire-size model: 8B per float, 4B per id, fixed headers.
#: The in-process transport passes references, so these are *accounting*
#: bytes — what a serialized telemetry stream would carry — used by the
#: sketch study and bench to compare full vs delta payloads.
_FLOAT_BYTES = 8
_ID_BYTES = 4
_MESSAGE_HEADER_BYTES = 64
_DIGEST_BYTES = 64


def telemetry_bytes(request: PlacementRequest | DeltaTelemetry) -> int:
    """Modeled wire size of one telemetry message.

    Full telemetry pays two float64 per curve knot and one (id, float)
    pair per thread-accessor entry for *every* VC; a delta pays the
    digest, each shipped sketch's fixed budget, and the exact payloads of
    the dirty subset only.
    """
    if isinstance(request, PlacementRequest):
        problem = request.problem
        total = _MESSAGE_HEADER_BYTES
        for vc in problem.vcs:
            total += 3 * _ID_BYTES  # vc id, kind, process id
            total += 2 * _FLOAT_BYTES * len(vc.miss_curve.sizes)
            total += (_ID_BYTES + _FLOAT_BYTES) * len(vc.accesses)
        for thread in problem.threads:
            total += 2 * _ID_BYTES  # thread id, process id
            total += (_ID_BYTES + _FLOAT_BYTES) * len(thread.vc_accesses)
        return total
    if isinstance(request, DeltaTelemetry):
        total = _MESSAGE_HEADER_BYTES + _DIGEST_BYTES
        for sketch in request.sketches.values():
            total += _ID_BYTES + sketch.nbytes
        for curve in request.dirty_curves.values():
            total += _ID_BYTES + 2 * _FLOAT_BYTES * len(curve.sizes)
        for rates in request.dirty_rates.values():
            total += _ID_BYTES + (_ID_BYTES + _FLOAT_BYTES) * len(rates)
        for key in request.dirty_clusters.values():
            total += _ID_BYTES + len(key.encode())
        return total
    raise TypeError(
        f"telemetry_bytes: expected PlacementRequest or DeltaTelemetry, "
        f"got {type(request).__name__}"
    )
