"""Co-scheduling as a service: the async control plane (PR 6).

The batch-shaped reproduction solves one placement problem at a time;
this package wraps :class:`repro.sched.engine.ReconfigEngine` in a
long-running asyncio service so "millions of users" becomes a benchmark:
clients (simulated chips/tenants) stream workload telemetry in — the
miss curves and phase snapshots a :class:`repro.sim.engine.EpochEngine`
reads off its monitors — and get placements back from concurrent warm
engines keyed by chip id.

Layers, bottom-up:

* :mod:`repro.service.messages` — typed requests/replies and the typed
  error hierarchy (malformed telemetry, queue full, budget exceeded,
  solve timeout);
* :mod:`repro.service.budget` — per-tenant token-bucket budgets with an
  injectable clock (deterministic in tests);
* :mod:`repro.service.engines` — the warm-engine pool: one
  :class:`~repro.sched.engine.ReconfigEngine` per chip, per-chip solve
  locks, last-good placements;
* :mod:`repro.service.server` — :class:`CoSchedService`: bounded request
  queue with admission control, worker tasks solving on a thread pool,
  request timeouts with graceful degradation to the last-good placement;
* :mod:`repro.service.transport` — the in-process transport and
  :class:`ServiceClient`, so tests and benchmarks need no network;
* :mod:`repro.service.load` — the deterministic load/fault harness
  behind ``python -m repro serve`` and the ``service_load`` experiment.

The contract everything above hangs off: placements returned by the
service are bitwise-identical to the same telemetry sequence driven
through ``EpochEngine.run_reconfigured`` with a warm engine (pinned in
``tests/test_service.py``).
"""

from repro.service.budget import TokenBucket
from repro.service.engines import ChipSlot, EnginePool
from repro.service.load import (
    FaultPlan,
    LoadReport,
    LoadSpec,
    SlowStrategy,
    drive_chip,
    run_load,
)
from repro.service.messages import (
    BudgetExceededError,
    DeltaTelemetry,
    MalformedTelemetryError,
    PlacementReply,
    PlacementRequest,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    SolveFailedError,
    SolveTimeoutError,
    StaleTelemetryError,
    build_delta,
    problem_digest,
    telemetry_bytes,
    validate_delta_telemetry,
    validate_telemetry,
)
from repro.service.server import CoSchedService, ServiceStats
from repro.service.transport import InProcessTransport, ServiceClient

__all__ = [
    "BudgetExceededError",
    "ChipSlot",
    "CoSchedService",
    "DeltaTelemetry",
    "EnginePool",
    "FaultPlan",
    "InProcessTransport",
    "LoadReport",
    "LoadSpec",
    "MalformedTelemetryError",
    "PlacementReply",
    "PlacementRequest",
    "QueueFullError",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceError",
    "ServiceStats",
    "SlowStrategy",
    "SolveFailedError",
    "SolveTimeoutError",
    "StaleTelemetryError",
    "TokenBucket",
    "build_delta",
    "drive_chip",
    "problem_digest",
    "run_load",
    "telemetry_bytes",
    "validate_delta_telemetry",
    "validate_telemetry",
]
