"""In-process transport and the simple client.

The control plane's transport is deliberately minimal: a transport is
anything with ``async request(PlacementRequest) -> PlacementReply``.
:class:`InProcessTransport` binds that to a local
:class:`~repro.service.server.CoSchedService` — requests pass by
reference through the service's bounded queue, so tests and benchmarks
exercise the full admission/queue/worker/timeout path with no network
and no serialization.  A socket transport would slot in behind the same
client unchanged.

:class:`ServiceClient` is one tenant's view: it stamps the chip id and a
monotonically increasing epoch on every request, optionally retries
queue-full rejections (the one admission error that is about *service*
pressure, not about this tenant misbehaving), and offers
:func:`ServiceClient.drive` — the telemetry loop a simulated chip runs,
shaped exactly like ``EpochEngine.run_reconfigured``.
"""

from __future__ import annotations

import asyncio

from repro.service.messages import (
    PlacementReply,
    PlacementRequest,
    QueueFullError,
)
from repro.service.server import CoSchedService


class InProcessTransport:
    """Binds a client to a service living in the same event loop."""

    def __init__(self, service: CoSchedService):
        self.service = service

    async def request(self, request: PlacementRequest) -> PlacementReply:
        return await self.service.submit(request)


class ServiceClient:
    """One tenant's handle on the control plane.

    *retries*/*retry_delay_s* apply only to
    :class:`~repro.service.messages.QueueFullError`: the client backs
    off and resubmits, so transient pressure does not kill a well-behaved
    tenant.  Every other typed error propagates immediately.
    """

    def __init__(
        self,
        transport: InProcessTransport | CoSchedService,
        chip_id: str,
        retries: int = 0,
        retry_delay_s: float = 0.005,
    ):
        if isinstance(transport, CoSchedService):
            transport = InProcessTransport(transport)
        self.transport = transport
        self.chip_id = chip_id
        self.retries = retries
        self.retry_delay_s = retry_delay_s
        self.epoch = 0
        self.replies: list[PlacementReply] = []

    async def place(
        self, problem, timeout_s: float | None = None
    ) -> PlacementReply:
        """Send one epoch's telemetry; returns (and records) the reply."""
        request = PlacementRequest(
            chip_id=self.chip_id,
            problem=problem,
            epoch=self.epoch,
            timeout_s=timeout_s,
        )
        attempt = 0
        while True:
            try:
                reply = await self.transport.request(request)
                break
            except QueueFullError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                await asyncio.sleep(self.retry_delay_s)
        self.epoch += 1
        self.replies.append(reply)
        return reply

    async def drive(
        self, sim, epoch_cycles: float, n_epochs: int
    ) -> list[PlacementReply]:
        """Run *sim* (an :class:`~repro.sim.engine.EpochEngine`) for
        *n_epochs*, reconfiguring through the service at every boundary.

        This is ``EpochEngine.run_reconfigured`` with the warm engine on
        the far side of the control plane: snapshot the active problem,
        request a placement, run the epoch under whatever came back
        (fresh or degraded).  The bitwise-equivalence pin compares the
        replies of this loop against the local engine's results.
        """
        replies = []
        for _ in range(n_epochs):
            reply = await self.place(sim.current_problem())
            # Client-side harness step, inline on purpose: the
            # equivalence pin needs the epoch advance ordered with the
            # replies, and the client loop is not the service loop.
            sim.run_epoch(reply.solution, epoch_cycles)  # repro: allow[async-discipline]
            replies.append(reply)
        return replies
