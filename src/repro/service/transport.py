"""In-process transport and the simple client.

The control plane's transport is deliberately minimal: a transport is
anything with ``async request(PlacementRequest) -> PlacementReply``.
:class:`InProcessTransport` binds that to a local
:class:`~repro.service.server.CoSchedService` — requests pass by
reference through the service's bounded queue, so tests and benchmarks
exercise the full admission/queue/worker/timeout path with no network
and no serialization.  A socket transport would slot in behind the same
client unchanged.

:class:`ServiceClient` is one tenant's view: it stamps the chip id and a
monotonically increasing epoch on every request, optionally retries
queue-full rejections (the one admission error that is about *service*
pressure, not about this tenant misbehaving), and offers
:func:`ServiceClient.drive` — the telemetry loop a simulated chip runs,
shaped exactly like ``EpochEngine.run_reconfigured``.

:meth:`ServiceClient.place_delta` is the streaming variant: it diffs
each epoch's problem against the last one the service acknowledged and
ships a :class:`~repro.service.messages.DeltaTelemetry` (sketches +
dirty payloads only), transparently falling back to full telemetry on
first contact, structural drift, or a
:class:`~repro.service.messages.StaleTelemetryError` from the service.
"""

from __future__ import annotations

import asyncio

from repro.cache.sketch import DEFAULT_SKETCH_BYTES
from repro.service.messages import (
    DeltaTelemetry,
    PlacementReply,
    PlacementRequest,
    QueueFullError,
    StaleTelemetryError,
    build_delta,
)
from repro.service.server import CoSchedService


class InProcessTransport:
    """Binds a client to a service living in the same event loop."""

    def __init__(self, service: CoSchedService):
        self.service = service

    async def request(
        self, request: PlacementRequest | DeltaTelemetry
    ) -> PlacementReply:
        return await self.service.submit(request)


class ServiceClient:
    """One tenant's handle on the control plane.

    *retries*/*retry_delay_s* apply only to
    :class:`~repro.service.messages.QueueFullError`: the client backs
    off and resubmits, so transient pressure does not kill a well-behaved
    tenant.  Every other typed error propagates immediately.
    *sketch_bytes* sets the per-VC telemetry budget of
    :meth:`place_delta`.
    """

    def __init__(
        self,
        transport: InProcessTransport | CoSchedService,
        chip_id: str,
        retries: int = 0,
        retry_delay_s: float = 0.005,
        sketch_bytes: int = DEFAULT_SKETCH_BYTES,
    ):
        if isinstance(transport, CoSchedService):
            transport = InProcessTransport(transport)
        self.transport = transport
        self.chip_id = chip_id
        self.retries = retries
        self.retry_delay_s = retry_delay_s
        self.sketch_bytes = sketch_bytes
        self.epoch = 0
        self.replies: list[PlacementReply] = []
        #: The last problem the service acknowledged with a fresh solve —
        #: the base the next delta patches.  None until first contact
        #: (and cleared again whenever the service reports staleness).
        self._base_problem = None
        #: Telemetry-path counters: how many epochs went out as deltas,
        #: as full problems, and how many deltas bounced stale.
        self.telemetry_stats = {"delta": 0, "full": 0, "stale": 0}

    async def _request_with_retry(
        self, request: PlacementRequest | DeltaTelemetry
    ) -> PlacementReply:
        attempt = 0
        while True:
            try:
                return await self.transport.request(request)
            except QueueFullError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                await asyncio.sleep(self.retry_delay_s)

    def _record(self, reply: PlacementReply, problem) -> PlacementReply:
        self.epoch += 1
        self.replies.append(reply)
        if reply.ok:
            self._base_problem = problem
        return reply

    async def place(
        self, problem, timeout_s: float | None = None
    ) -> PlacementReply:
        """Send one epoch's full telemetry; returns (and records) the reply."""
        reply = await self._request_with_retry(PlacementRequest(
            chip_id=self.chip_id,
            problem=problem,
            epoch=self.epoch,
            timeout_s=timeout_s,
        ))
        self.telemetry_stats["full"] += 1
        return self._record(reply, problem)

    async def place_delta(
        self, problem, timeout_s: float | None = None
    ) -> PlacementReply:
        """Send one epoch's telemetry as a delta when possible.

        Diffs *problem* against the last acknowledged problem and ships
        only the changed sketches + dirty payloads.  Falls back to
        :meth:`place` (full telemetry) on first contact, when the chip's
        structure drifted, or when the service answers
        :class:`~repro.service.messages.StaleTelemetryError` — so the
        caller always gets a normal reply either way.
        """
        delta = None
        if self._base_problem is not None:
            delta = build_delta(
                self._base_problem,
                problem,
                self.chip_id,
                epoch=self.epoch,
                sketch_bytes=self.sketch_bytes,
                timeout_s=timeout_s,
            )
        if delta is None:
            return await self.place(problem, timeout_s)
        try:
            reply = await self._request_with_retry(delta)
        except StaleTelemetryError:
            # The service lost (or never had) our base: resynchronize
            # with one full problem, then stream deltas again.
            self.telemetry_stats["stale"] += 1
            self._base_problem = None
            return await self.place(problem, timeout_s)
        self.telemetry_stats["delta"] += 1
        return self._record(reply, problem)

    async def drive(
        self,
        sim,
        epoch_cycles: float,
        n_epochs: int,
        use_deltas: bool = False,
    ) -> list[PlacementReply]:
        """Run *sim* (an :class:`~repro.sim.engine.EpochEngine`) for
        *n_epochs*, reconfiguring through the service at every boundary.

        This is ``EpochEngine.run_reconfigured`` with the warm engine on
        the far side of the control plane: snapshot the active problem,
        request a placement, run the epoch under whatever came back
        (fresh or degraded).  The bitwise-equivalence pin compares the
        replies of this loop against the local engine's results.  With
        ``use_deltas=True`` the telemetry goes through
        :meth:`place_delta` — full on first contact, streamed after.
        """
        replies = []
        send = self.place_delta if use_deltas else self.place
        for _ in range(n_epochs):
            reply = await send(sim.current_problem())
            # Client-side harness step, inline on purpose: the
            # equivalence pin needs the epoch advance ordered with the
            # replies, and the client loop is not the service loop.
            sim.run_epoch(reply.solution, epoch_cycles)  # repro: allow[async-discipline]
            replies.append(reply)
        return replies
