"""Warm-engine lifecycle: one :class:`ReconfigEngine` per chip.

The service's whole value is warm state — an engine that has seen a
chip's previous epochs re-solves only what moved.  The pool owns that
state: engines are created on a chip's first request, each guarded by an
asyncio lock so one chip's solves stay strictly sequential (warm state
must advance in telemetry order; different chips solve concurrently),
and each slot remembers the last-good placement the server degrades to
when a fresh solve times out or fails.

Engines for evicted chips (beyond ``max_chips``, least-recently-used
first) simply cold-start on their next request — correctness never
depends on warmth, only solve cost does.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.sched.engine import ReconfigEngine, SolveStrategy
from repro.sched.problem import PlacementSolution
from repro.sched.reconfigure import ReconfigPolicy


@dataclass
class ChipSlot:
    """One chip's serving state: warm engine + solve lock + last-good."""

    chip_id: str
    engine: ReconfigEngine
    #: Serializes solves for this chip; the worker holds it for the whole
    #: solve, including an abandoned (timed-out) one, so a later request
    #: can never race a solve still running on the executor.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Solves completed (cold + warm) — the service-side epoch counter.
    epochs: int = 0
    #: Replies served from the last-good placement instead of a solve.
    degraded: int = 0

    def last_good(self) -> PlacementSolution | None:
        """A copy of the newest placement this chip was ever served."""
        return self.engine.last_solution()


class EnginePool:
    """Keyed warm engines: ``pool.slot(chip_id)`` creates on first use.

    *strategy* (any registered name — ``full``, ``incremental``,
    ``partitioned``, ``hierarchical`` — or a ready
    :class:`SolveStrategy` instance), *policy*,
    and *strategy_kwargs* configure every chip's engine identically — the
    equivalence contract requires a chip served here to see exactly the
    engine a standalone ``ReconfigEngine(strategy)`` would be.  With
    *max_chips* set, the least-recently-used idle slot is dropped when a
    new chip would exceed it (a busy slot — lock held — is never
    evicted).
    """

    def __init__(
        self,
        strategy: str | SolveStrategy = "incremental",
        policy: ReconfigPolicy | None = None,
        max_chips: int | None = None,
        **strategy_kwargs,
    ):
        if max_chips is not None and max_chips < 1:
            raise ValueError(f"max_chips must be >= 1, got {max_chips}")
        self._strategy = strategy
        self._policy = policy
        self._strategy_kwargs = dict(strategy_kwargs)
        self.max_chips = max_chips
        #: Insertion order doubles as recency order (moved on access).
        self._slots: dict[str, ChipSlot] = {}

    def _make_engine(self) -> ReconfigEngine:
        if isinstance(self._strategy, str):
            return ReconfigEngine(
                self._strategy,
                policy=self._policy,
                **self._strategy_kwargs,
            )
        # A ready strategy instance is shared across chips: strategies
        # are stateless (all warm state lives in the engine), so sharing
        # is safe and lets tests inject fault wrappers once.
        return ReconfigEngine(self._strategy, policy=self._policy)

    def slot(self, chip_id: str) -> ChipSlot:
        """The chip's slot, created (and possibly evicting) on first use."""
        existing = self._slots.pop(chip_id, None)
        if existing is not None:
            self._slots[chip_id] = existing  # refresh recency
            return existing
        if self.max_chips is not None and len(self._slots) >= self.max_chips:
            self._evict_one()
        slot = ChipSlot(chip_id=chip_id, engine=self._make_engine())
        self._slots[chip_id] = slot
        return slot

    def _evict_one(self) -> None:
        for chip_id, slot in self._slots.items():
            if not slot.lock.locked():
                del self._slots[chip_id]
                return
        # Every slot is mid-solve: admit the newcomer anyway rather than
        # reject — max_chips bounds warm memory, not correctness.

    def chips(self) -> list[str]:
        """Chip ids currently holding a warm engine (oldest first)."""
        return list(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, chip_id: str) -> bool:
        return chip_id in self._slots
