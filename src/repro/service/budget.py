"""Per-tenant token-bucket budgets.

One bucket per tenant caps its placement-request rate: a request costs
one token, tokens refill continuously at ``refill_per_s`` up to
``capacity`` (the burst size).  This is the BCache-style per-tenant
credit scheme: a chatty tenant drains its own bucket and gets typed
``budget_exceeded`` rejections while everyone else keeps being served.

The clock is injectable so tests drive refill deterministically instead
of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable


class TokenBucket:
    """A continuous-refill token bucket (starts full)."""

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if refill_per_s < 0:
            raise ValueError(
                f"refill rate must be >= 0, got {refill_per_s}"
            )
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_s
            )
        self._last = now

    @property
    def available(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def try_take(self, tokens: float = 1.0) -> bool:
        """Spend *tokens* if the bucket holds them; False otherwise."""
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        self._refill()
        if self._tokens + 1e-12 < tokens:
            return False
        self._tokens -= tokens
        return True
