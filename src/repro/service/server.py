"""The co-scheduling control plane: :class:`CoSchedService`.

A long-running asyncio service in the BCache brain/data-plane shape: the
"brain" (this module) owns admission control and warm engines, the "data
plane" (the chips' own epoch simulation) streams telemetry in and
applies the placements that come back.

Request lifecycle::

    submit() -- validate -> token bucket -> bounded queue   (admission)
    worker   -- per-chip lock -> engine.solve on thread pool (service)
    reply    -- fresh placement, or last-good on timeout/failure

Admission failures raise typed errors synchronously (nothing was
queued); service-side failures degrade to the chip's last-good placement
when one exists, so a chip that was ever served keeps running on a stale
— but valid — placement rather than crashing.  A timed-out solve is
abandoned, not raced: the worker keeps the chip's lock until the
abandoned solve actually finishes on the executor, so warm state stays
consistent and the chip is serviceable again afterwards.

Determinism: replies for one chip are produced by one warm engine in
telemetry order, so they are bitwise-identical to the same sequence
driven through ``EpochEngine.run_reconfigured`` — regardless of how many
other tenants interleave (pinned in ``tests/test_service.py``).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.sched.engine import SolveStrategy
from repro.sched.problem import PlacementProblem
from repro.sched.reconfigure import ReconfigPolicy, ReconfigResult
from repro.service.budget import TokenBucket
from repro.util.guards import assert_lock_held
from repro.service.engines import ChipSlot, EnginePool
from repro.service.messages import (
    BudgetExceededError,
    DeltaTelemetry,
    MalformedTelemetryError,
    PlacementReply,
    PlacementRequest,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    SolveFailedError,
    SolveTimeoutError,
    StaleTelemetryError,
    problem_digest,
    validate_delta_telemetry,
    validate_telemetry,
)
from repro.vcache.virtual_cache import VirtualCache


@dataclass
class ServiceStats:
    """Service-lifetime counters plus per-reply latency samples."""

    submitted: int = 0
    completed: int = 0
    degraded: int = 0
    timeouts: int = 0
    solve_errors: int = 0
    #: Delta-telemetry requests that could not anchor (client falls back).
    stale_deltas: int = 0
    #: error code -> count of synchronous admission rejections.
    rejected: dict[str, int] = field(default_factory=dict)
    #: submit-to-reply wall latency of every completed request (seconds).
    latencies: list[float] = field(default_factory=list)

    def reject(self, code: str) -> None:
        self.rejected[code] = self.rejected.get(code, 0) + 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def latency_percentile(self, q: float) -> float:
        """The *q*-quantile (0 < q <= 1) of completed-request latency."""
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = max(0, min(len(ordered) - 1, round(q * len(ordered)) - 1))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "timeouts": self.timeouts,
            "solve_errors": self.solve_errors,
            "stale_deltas": self.stale_deltas,
            "rejected": dict(self.rejected),
            "p50_latency_s": self.latency_percentile(0.50),
            "p99_latency_s": self.latency_percentile(0.99),
        }


#: One queued unit of work: (request, reply future, submit timestamp).
_Pending = tuple["PlacementRequest | DeltaTelemetry", asyncio.Future, float]


class CoSchedService:
    """Async control plane over a pool of warm reconfiguration engines.

    *strategy*/*policy*/*strategy_kwargs* configure every chip's engine
    (see :class:`~repro.service.engines.EnginePool`).  *queue_limit*
    bounds the request queue (admission rejects beyond it); *workers* is
    the number of concurrent worker tasks pulling from it, each solving
    on a shared thread pool.  *solve_timeout_s* is the default per-solve
    deadline (None = no deadline).  *tenant_rate*/*tenant_burst* enable
    per-tenant token buckets (requests per second / burst size); *clock*
    feeds the buckets and is injectable for deterministic tests.

    Use as an async context manager, or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        strategy: str | SolveStrategy = "incremental",
        policy: ReconfigPolicy | None = None,
        queue_limit: int = 64,
        workers: int = 2,
        solve_timeout_s: float | None = None,
        tenant_rate: float | None = None,
        tenant_burst: float | None = None,
        max_chips: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        **strategy_kwargs,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if solve_timeout_s is not None and solve_timeout_s <= 0:
            raise ValueError(
                f"solve_timeout_s must be positive, got {solve_timeout_s}"
            )
        if tenant_rate is not None and tenant_rate <= 0:
            raise ValueError(
                f"tenant_rate must be positive, got {tenant_rate}"
            )
        self.pool = EnginePool(
            strategy, policy=policy, max_chips=max_chips, **strategy_kwargs
        )
        self.queue_limit = queue_limit
        self.workers = workers
        self.solve_timeout_s = solve_timeout_s
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            tenant_burst if tenant_burst is not None
            else (tenant_rate or 1.0)
        )
        self._clock = clock
        self.stats = ServiceStats()
        self._buckets: dict[str, TokenBucket] = {}
        self._queue: asyncio.Queue[_Pending] | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._inflight: set[asyncio.Future] = set()
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "CoSchedService":
        if self._running:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="cosched-solve",
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"cosched-worker-{i}")
            for i in range(self.workers)
        ]
        self._running = True
        return self

    async def stop(self) -> None:
        """Drain accepted requests, then shut everything down."""
        if not self._running:
            return
        self._running = False
        await self._queue.join()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        # Abandoned (timed-out) solves may still be running on the
        # executor; wait them out so their lock-release callbacks fire
        # while the loop is alive.
        if self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )
        self._executor.shutdown(wait=True)
        self._worker_tasks = []

    async def __aenter__(self) -> "CoSchedService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # -- admission -----------------------------------------------------------

    def _bucket(self, chip_id: str) -> TokenBucket | None:
        if self.tenant_rate is None:
            return None
        bucket = self._buckets.get(chip_id)
        if bucket is None:
            bucket = TokenBucket(
                capacity=self.tenant_burst,
                refill_per_s=self.tenant_rate,
                clock=self._clock,
            )
            self._buckets[chip_id] = bucket
        return bucket

    def submit(
        self, request: PlacementRequest | DeltaTelemetry
    ) -> asyncio.Future:
        """Admit *request*; returns the future resolving to its reply.

        Accepts full telemetry (:class:`PlacementRequest`) or a delta
        (:class:`DeltaTelemetry`).  Raises synchronously (and queues
        nothing) on admission failure: :class:`ServiceClosedError`,
        :class:`MalformedTelemetryError`, :class:`BudgetExceededError`,
        or :class:`QueueFullError`.  A delta that passes admission can
        still fail later with :class:`StaleTelemetryError` (resolved
        under the chip's lock, against the live engine state).
        """
        if not self._running:
            raise ServiceClosedError("service is not running")
        try:
            if isinstance(request, DeltaTelemetry):
                validate_delta_telemetry(request)
            else:
                validate_telemetry(request)
        except MalformedTelemetryError:
            self.stats.reject(MalformedTelemetryError.code)
            raise
        bucket = self._bucket(request.chip_id)
        if bucket is not None and not bucket.try_take():
            self.stats.reject(BudgetExceededError.code)
            raise BudgetExceededError(
                f"tenant {request.chip_id} is out of budget "
                f"(rate {self.tenant_rate}/s, burst {self.tenant_burst})"
            )
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, future, time.perf_counter()))
        except asyncio.QueueFull:
            self.stats.reject(QueueFullError.code)
            raise QueueFullError(
                f"request queue at capacity ({self.queue_limit})"
            ) from None
        self.stats.submitted += 1
        return future

    async def place(
        self,
        chip_id: str,
        problem: PlacementProblem,
        epoch: int = 0,
        timeout_s: float | None = None,
    ) -> PlacementReply:
        """Submit one request and await its reply."""
        return await self.submit(PlacementRequest(
            chip_id=chip_id, problem=problem, epoch=epoch,
            timeout_s=timeout_s,
        ))

    # -- service -------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            pending = await self._queue.get()
            try:
                await self._handle(pending)
            finally:
                self._queue.task_done()

    @staticmethod
    def _solve_sync(slot: ChipSlot, problem: PlacementProblem):
        # Warm-engine access is only legal under the chip's slot lock
        # (one solve at a time per chip); REPRO_CHECK_LOCKS=1 turns that
        # convention into a runtime assertion on every solve.
        assert_lock_held(slot.lock, f"chip {slot.chip_id} engine")
        t0 = time.perf_counter()
        result = slot.engine.solve(problem)
        return result, time.perf_counter() - t0

    @staticmethod
    def _resolve_delta(
        slot: ChipSlot, delta: DeltaTelemetry
    ) -> PlacementProblem:
        """Patch the chip's last-good problem with *delta* (slot lock held).

        Raises :class:`StaleTelemetryError` when the delta cannot anchor:
        the engine has no last-good problem (first contact or evicted
        slot), the digest does not match it (the client and service
        disagree about the base), or the delta names VCs the base does
        not have.  Anchored deltas rebuild only the dirty VCs and the
        threads whose rates or cluster keys moved; everything else keeps
        the base's objects, so the engine's sketch memos see clean VCs
        as identical.
        """
        assert_lock_held(slot.lock, f"chip {slot.chip_id} engine")
        base = slot.engine.state.problem
        if base is None:
            raise StaleTelemetryError(
                f"chip {delta.chip_id}: no last-good problem to patch "
                f"(first contact); send full telemetry"
            )
        if problem_digest(base) != delta.base_digest:
            raise StaleTelemetryError(
                f"chip {delta.chip_id}: base digest mismatch; "
                f"send full telemetry"
            )
        base_ids = {vc.vc_id for vc in base.vcs}
        unknown = (set(delta.sketches) | set(delta.dirty_rates)) - base_ids
        if unknown:
            raise StaleTelemetryError(
                f"chip {delta.chip_id}: delta names unknown VCs "
                f"{sorted(unknown)}; send full telemetry"
            )
        base_thread_ids = {t.thread_id for t in base.threads}
        unknown_threads = set(delta.dirty_clusters) - base_thread_ids
        if unknown_threads:
            raise StaleTelemetryError(
                f"chip {delta.chip_id}: delta names unknown threads "
                f"{sorted(unknown_threads)}; send full telemetry"
            )
        if (
            not delta.dirty_curves
            and not delta.dirty_rates
            and not delta.dirty_clusters
        ):
            # Stationary epoch: re-solve the very same problem object
            # (its memoized sketch bank rides along, so a sketch-driven
            # engine sees every VC clean without recomputing anything).
            return base
        vcs = []
        for vc in base.vcs:
            curve = delta.dirty_curves.get(vc.vc_id)
            rates = delta.dirty_rates.get(vc.vc_id)
            if curve is None and rates is None:
                vcs.append(vc)
                continue
            vcs.append(VirtualCache(
                vc_id=vc.vc_id,
                kind=vc.kind,
                process_id=vc.process_id,
                miss_curve=curve if curve is not None else vc.miss_curve,
                accesses=dict(rates) if rates is not None else dict(vc.accesses),
                allocation=dict(vc.allocation),
                owner_thread=vc.owner_thread,
            ))
        threads = base.threads
        if delta.dirty_rates or delta.dirty_clusters:
            threads = []
            for thread in base.threads:
                # Preserve the base key order (placement reductions
                # iterate these dicts); rate updates replace in place,
                # zero/absent rates drop, newly-accessed VCs append.
                accesses = {}
                for vc_id, rate in thread.vc_accesses.items():
                    if vc_id in delta.dirty_rates:
                        rate = delta.dirty_rates[vc_id].get(
                            thread.thread_id, 0.0
                        )
                        if rate <= 0:
                            continue
                    accesses[vc_id] = rate
                for vc_id in sorted(delta.dirty_rates):
                    if vc_id in thread.vc_accesses:
                        continue
                    rate = delta.dirty_rates[vc_id].get(thread.thread_id, 0.0)
                    if rate > 0:
                        accesses[vc_id] = rate
                cluster_key = delta.dirty_clusters.get(
                    thread.thread_id, thread.cluster_key
                )
                if (
                    accesses == thread.vc_accesses
                    and cluster_key == thread.cluster_key
                ):
                    threads.append(thread)
                else:
                    threads.append(
                        replace(
                            thread,
                            vc_accesses=accesses,
                            cluster_key=cluster_key,
                        )
                    )
        return PlacementProblem(
            config=base.config,
            topology=base.topology,
            vcs=vcs,
            threads=list(threads),
            mem_latency=base.mem_latency,
        )

    async def _handle(self, pending: _Pending) -> None:
        request, future, t_submit = pending
        slot = self.pool.slot(request.chip_id)
        loop = asyncio.get_running_loop()
        await slot.lock.acquire()
        lock_deferred = False
        try:
            if isinstance(request, DeltaTelemetry):
                try:
                    problem = self._resolve_delta(slot, request)
                except StaleTelemetryError as exc:
                    self.stats.stale_deltas += 1
                    if not future.done():
                        future.set_exception(exc)
                    return
            else:
                problem = request.problem
            inner = loop.run_in_executor(
                self._executor, self._solve_sync, slot, problem
            )
            self._inflight.add(inner)
            inner.add_done_callback(self._inflight.discard)
            timeout = (
                request.timeout_s if request.timeout_s is not None
                else self.solve_timeout_s
            )
            try:
                result, solve_s = await asyncio.wait_for(
                    asyncio.shield(inner), timeout
                )
            except TimeoutError:
                # The solve keeps running on its executor thread; the
                # chip's lock is released only when it finishes, so the
                # next request for this chip waits instead of racing it.
                self.stats.timeouts += 1
                lock_deferred = True
                inner.add_done_callback(lambda _f: slot.lock.release())
                self._finish_degraded(
                    slot, request, future, t_submit,
                    SolveTimeoutError(
                        f"chip {request.chip_id}: solve exceeded "
                        f"{timeout:g}s"
                    ),
                )
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.stats.solve_errors += 1
                self._finish_degraded(
                    slot, request, future, t_submit,
                    SolveFailedError(
                        f"chip {request.chip_id}: solve failed: {exc}"
                    ),
                )
                return
            slot.epochs += 1
            self._finish_ok(slot, request, future, t_submit, result)
        finally:
            if not lock_deferred:
                slot.lock.release()

    def _finish_ok(
        self,
        slot: ChipSlot,
        request: PlacementRequest | DeltaTelemetry,
        future: asyncio.Future,
        t_submit: float,
        result: ReconfigResult,
    ) -> None:
        latency = time.perf_counter() - t_submit
        self.stats.completed += 1
        self.stats.latencies.append(latency)
        if future.done():
            return  # the client gave up waiting
        future.set_result(PlacementReply(
            chip_id=request.chip_id,
            epoch=request.epoch,
            status="ok",
            solution=result.solution,
            strategy=result.strategy,
            modeled_mcycles=result.modeled_cycles() / 1e6,
            latency_s=latency,
            step_cycles=result.step_cycles(),
        ))

    def _finish_degraded(
        self,
        slot: ChipSlot,
        request: PlacementRequest | DeltaTelemetry,
        future: asyncio.Future,
        t_submit: float,
        error: ServiceError,
    ) -> None:
        """Fall back to the last-good placement, or surface the error."""
        last_good = slot.last_good()
        if future.done():
            return
        if last_good is None:
            future.set_exception(error)
            return
        latency = time.perf_counter() - t_submit
        slot.degraded += 1
        self.stats.degraded += 1
        self.stats.completed += 1
        self.stats.latencies.append(latency)
        future.set_result(PlacementReply(
            chip_id=request.chip_id,
            epoch=request.epoch,
            status="degraded",
            solution=last_good,
            strategy=slot.engine.strategy.name,
            latency_s=latency,
            error=error.code,
        ))
