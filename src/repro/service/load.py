"""Deterministic load/fault harness for the control plane.

This is the serving-shaped benchmark the ROADMAP asked for: N simulated
chips (tenants), each a seeded :class:`~repro.sim.engine.EpochEngine`
over its own random mix, stream telemetry through one
:class:`~repro.service.server.CoSchedService` concurrently; the report
records requests/sec and p50/p99 placement latency.

Determinism: mixes come from ``(seed, chip index)``, per-chip placements
are produced by per-chip warm engines in telemetry order (so every
placement is bitwise-identical to the same chip running alone — the
isolation contract), and faults are injected at declared (chip, epoch)
coordinates via :class:`FaultPlan`, not by racing timers.  Only the wall
clock (and with it requests/sec and latency percentiles) varies run to
run.

:class:`SlowStrategy` is the timeout-fault tool: it wraps any solve
strategy and sleeps before delegating, so a test can force a mid-solve
deadline miss with a deterministic trigger.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.sched.engine import SolveStrategy, make_strategy
from repro.service.messages import (
    MalformedTelemetryError,
    PlacementRequest,
)
from repro.service.server import CoSchedService
from repro.service.transport import ServiceClient

#: Epoch length driven between reconfigurations, in modeled Mcycles —
#: long enough that the generator's phased profiles actually flip
#: between solves (matches the solver study's default period).
DEFAULT_EPOCH_MCYCLES = 200.0


class SlowStrategy:
    """Fault-injection wrapper: sleep *delay_s* before delegating.

    With *slow_calls* given, only those solve-call indices (counted
    across all chips sharing this instance) sleep; otherwise every call
    does.  The delegate's results are untouched, so a slow solve that
    beats its deadline is still bitwise-correct.
    """

    def __init__(
        self,
        inner: str | SolveStrategy = "full",
        delay_s: float = 0.05,
        slow_calls: frozenset[int] | None = None,
    ):
        if isinstance(inner, str):
            inner = make_strategy(inner)
        self.inner = inner
        self.name = inner.name
        self.delay_s = delay_s
        self.slow_calls = slow_calls
        self.calls = 0

    def solve(self, problem, policy, external_thread_cores, state):
        call = self.calls
        self.calls += 1
        if self.slow_calls is None or call in self.slow_calls:
            time.sleep(self.delay_s)
        return self.inner.solve(
            problem, policy, external_thread_cores, state
        )


def malformed_request(chip_id: str = "rogue") -> PlacementRequest:
    """Telemetry that must bounce off validation: the payload is not a
    placement problem at all (what a corrupted or hostile client sends)."""
    return PlacementRequest(chip_id=chip_id, problem="not telemetry")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injections for a load run.

    *malformed* lists ``(chip_index, epoch)`` coordinates; just before
    that chip's real telemetry for that epoch, it sends one garbage
    request and swallows the typed rejection (which the service counts).
    The real request still follows, so placement sequences — and the
    bitwise-isolation contract — are unaffected by injected faults.
    """

    malformed: tuple[tuple[int, int], ...] = ()

    def malformed_epochs(self, chip_index: int) -> frozenset[int]:
        return frozenset(
            epoch for chip, epoch in self.malformed if chip == chip_index
        )


@dataclass(frozen=True)
class LoadSpec:
    """One load run: the fleet, the chip shape, and the service knobs."""

    chips: int = 4
    epochs: int = 6
    tiles: int = 16
    #: Apps per chip; None = one per tile (fully committed).
    apps: int | None = None
    #: "phased" chips drift their curves between epochs (warm engines
    #: earn their keep); "stationary" chips re-send identical telemetry.
    dynamism: str = "phased"
    strategy: str = "incremental"
    workers: int = 2
    queue_limit: int = 32
    solve_timeout_s: float | None = None
    tenant_rate: float | None = None
    tenant_burst: float | None = None
    epoch_mcycles: float = DEFAULT_EPOCH_MCYCLES
    seed: int = 42
    #: Queue-full retries per request (clients back off and resubmit).
    retries: int = 16

    def __post_init__(self) -> None:
        if self.chips < 1:
            raise ValueError(f"need at least one chip, got {self.chips}")
        if self.epochs < 1:
            raise ValueError(f"need at least one epoch, got {self.epochs}")
        if self.dynamism not in ("phased", "stationary"):
            raise ValueError(
                f"unknown dynamism {self.dynamism!r} "
                f"(phased or stationary)"
            )


@dataclass(frozen=True)
class LoadReport:
    """What one load run measured (the ``service_load`` payload)."""

    spec: dict[str, Any]
    requests: int
    ok: int
    degraded: int
    timeouts: int
    rejected: dict[str, int]
    wall_seconds: float
    requests_per_sec: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_modeled_mcycles: float
    #: (chip_id, ok, degraded) per chip, in chip order.
    per_chip: tuple[tuple[str, int, int], ...] = field(default=())

    def table_rows(self) -> list[tuple]:
        return [
            (
                self.spec["chips"], self.spec["epochs"],
                self.spec["tiles"], self.spec["strategy"],
                self.spec["dynamism"], self.requests, self.ok,
                self.degraded, sum(self.rejected.values()),
                round(self.requests_per_sec, 1),
                round(self.p50_latency_ms, 2),
                round(self.p99_latency_ms, 2),
            )
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": dict(self.spec),
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "timeouts": self.timeouts,
            "rejected": dict(self.rejected),
            "wall_seconds": self.wall_seconds,
            "requests_per_sec": self.requests_per_sec,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "mean_modeled_mcycles": self.mean_modeled_mcycles,
            "per_chip": [list(row) for row in self.per_chip],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LoadReport":
        return cls(
            spec=dict(data["spec"]),
            requests=data["requests"],
            ok=data["ok"],
            degraded=data["degraded"],
            timeouts=data["timeouts"],
            rejected=dict(data["rejected"]),
            wall_seconds=data["wall_seconds"],
            requests_per_sec=data["requests_per_sec"],
            p50_latency_ms=data["p50_latency_ms"],
            p99_latency_ms=data["p99_latency_ms"],
            mean_modeled_mcycles=data["mean_modeled_mcycles"],
            per_chip=tuple(tuple(row) for row in data["per_chip"]),
        )


def build_chip(spec: LoadSpec, index: int):
    """(chip_id, EpochEngine) for chip *index* of the fleet — seeded, so
    the same spec always builds the same fleet."""
    # Lazy: repro.service must stay importable without dragging in the
    # whole experiments package (which itself imports this module via the
    # service_load spec).
    from repro.experiments.scalability import scaled_mesh_config
    from repro.nuca.base import build_problem
    from repro.workloads.mixes import (
        random_phased_mix,
        random_single_threaded_mix,
    )
    from repro.sim.engine import EpochEngine

    config = scaled_mesh_config(spec.tiles)
    apps = spec.apps if spec.apps is not None else spec.tiles
    if spec.dynamism == "phased":
        mix = random_phased_mix(apps, spec.seed, mix_id=index)
    else:
        mix = random_single_threaded_mix(apps, spec.seed, mix_id=index)
    sim = EpochEngine(mix, build_problem(mix, config))
    return f"chip-{index}", sim


async def drive_chip(
    service: CoSchedService,
    chip_id: str,
    sim,
    epoch_cycles: float,
    n_epochs: int,
    retries: int = 16,
    malformed_epochs: frozenset[int] = frozenset(),
) -> ServiceClient:
    """One chip's serving loop: telemetry out, placement in, epoch run.

    Injected malformed telemetry (see :class:`FaultPlan`) precedes the
    real request of its epoch; its typed rejection is swallowed here and
    counted by the service.
    """
    client = ServiceClient(service, chip_id, retries=retries)
    for epoch in range(n_epochs):
        if epoch in malformed_epochs:
            try:
                service.submit(malformed_request(chip_id))
            except MalformedTelemetryError:
                pass
        reply = await client.place(sim.current_problem())
        # Harness-side tenant compute, run inline on purpose: the load
        # model wants each chip's epoch advance serialized with its own
        # placement replies, and the modeled epoch step is microseconds
        # of host work — not a service-path blocking hazard.
        sim.run_epoch(reply.solution, epoch_cycles)  # repro: allow[async-discipline]
    return client


async def run_load_async(
    spec: LoadSpec, faults: FaultPlan | None = None
) -> LoadReport:
    """Run one load session against a fresh service; returns the report."""
    faults = faults or FaultPlan()
    chips = [build_chip(spec, index) for index in range(spec.chips)]
    epoch_cycles = spec.epoch_mcycles * 1e6
    service = CoSchedService(
        strategy=spec.strategy,
        queue_limit=spec.queue_limit,
        workers=spec.workers,
        solve_timeout_s=spec.solve_timeout_s,
        tenant_rate=spec.tenant_rate,
        tenant_burst=spec.tenant_burst,
    )
    async with service:
        t0 = time.perf_counter()
        clients = await asyncio.gather(*[
            drive_chip(
                service, chip_id, sim, epoch_cycles, spec.epochs,
                retries=spec.retries,
                malformed_epochs=faults.malformed_epochs(index),
            )
            for index, (chip_id, sim) in enumerate(chips)
        ])
        wall = time.perf_counter() - t0
    stats = service.stats
    replies = [reply for client in clients for reply in client.replies]
    ok = sum(1 for r in replies if r.ok)
    modeled = [r.modeled_mcycles for r in replies if r.ok]
    per_chip = tuple(
        (
            client.chip_id,
            sum(1 for r in client.replies if r.ok),
            sum(1 for r in client.replies if not r.ok),
        )
        for client in clients
    )
    return LoadReport(
        spec={
            "chips": spec.chips,
            "epochs": spec.epochs,
            "tiles": spec.tiles,
            "apps": spec.apps,
            "dynamism": spec.dynamism,
            "strategy": spec.strategy,
            "workers": spec.workers,
            "queue_limit": spec.queue_limit,
            "seed": spec.seed,
        },
        requests=len(replies),
        ok=ok,
        degraded=len(replies) - ok,
        timeouts=stats.timeouts,
        rejected=dict(stats.rejected),
        wall_seconds=wall,
        requests_per_sec=len(replies) / wall if wall > 0 else 0.0,
        p50_latency_ms=1e3 * stats.latency_percentile(0.50),
        p99_latency_ms=1e3 * stats.latency_percentile(0.99),
        mean_modeled_mcycles=(
            sum(modeled) / len(modeled) if modeled else 0.0
        ),
        per_chip=per_chip,
    )


def run_load(spec: LoadSpec, faults: FaultPlan | None = None) -> LoadReport:
    """Synchronous entry point (the CLI/benchmark/job surface)."""
    return asyncio.run(run_load_async(spec, faults))
