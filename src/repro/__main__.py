"""Command-line entry point: regenerate paper experiments from the shell.

Usage::

    python -m repro table1              # the 36-tile case study
    python -m repro fig13 --mixes 8     # occupancy sweep
    python -m repro table3              # reconfiguration runtime
    python -m repro fig17               # reconfiguration IPC traces
    python -m repro list                # all available experiments
"""

from __future__ import annotations

import argparse
import sys

from repro.config import default_config
from repro.experiments import (
    PROTOCOLS,
    format_series,
    format_table,
    run_case_study,
    run_factor_analysis,
    run_monitor_comparison,
    run_reconfig_trace,
    run_sweep,
    run_table3,
)
from repro.util.units import mb
from repro.workloads import get_profile

SCHEMES = ("R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS")


def cmd_table1(args) -> None:
    result = run_case_study()
    print(format_table(
        ["Scheme", "omnet", "ilbdc", "milc", "WS"], result.table1(),
        title="Table 1: case-study speedups over S-NUCA",
    ))


def cmd_sweep(args, n_apps: int, multithreaded: bool = False) -> None:
    sweep = run_sweep(
        default_config(), n_apps=n_apps, n_mixes=args.mixes, seed=args.seed,
        multithreaded=multithreaded,
    )
    rows = [(s, sweep.gmean_speedup(s), sweep.max_speedup(s)) for s in SCHEMES]
    kind = "8-thread" if multithreaded else "single-threaded"
    print(format_table(
        ["Scheme", "gmean WS", "max WS"], rows,
        title=f"{args.mixes} mixes of {n_apps} {kind} apps",
    ))


def cmd_fig12(args) -> None:
    for n_apps in (64, 4):
        result = run_factor_analysis(
            default_config(), n_apps=n_apps, n_mixes=args.mixes, seed=args.seed
        )
        print(format_table(
            ["Variant", "gmean WS"], list(result.gmeans().items()),
            title=f"Fig 12 factor analysis at {n_apps} apps",
        ))


def cmd_fig13(args) -> None:
    rows = []
    for n_apps in (1, 2, 4, 8, 16, 32, 64):
        sweep = run_sweep(default_config(), n_apps=n_apps,
                          n_mixes=args.mixes, seed=args.seed)
        rows.append((f"{n_apps}", *(sweep.gmean_speedup(s) for s in SCHEMES)))
    print(format_table(["apps"] + list(SCHEMES), rows,
                       title="Fig 13: gmean WS vs occupancy"))


def cmd_fig17(args) -> None:
    for name in PROTOCOLS:
        trace = run_reconfig_trace(name, capacity_scale=16, seed=args.seed)
        print(format_series(
            f"{name} (Mcycle, IPC)",
            [(t / 1e6, v) for t, v in
             trace.trace[:: max(len(trace.trace) // 15, 1)]],
            fmt="{:.2f}",
        ))


def cmd_table3(args) -> None:
    rows = run_table3(seed=args.seed, repeats=3)
    print(format_table(
        ["thr/cores", "total Mcycles", "overhead@25ms"],
        [(f"{r.threads}/{r.cores}", r.total_mcycles,
          f"{r.overhead_percent():.3f}%") for r in rows],
        title="Table 3: reconfiguration runtime",
    ))


def cmd_gmon(args) -> None:
    for acc in run_monitor_comparison(get_profile("astar"), mb(32)):
        print(f"{acc.monitor_kind}-{acc.ways}: "
              f"MAE={acc.mean_abs_error:.3f} "
              f"small-size MAE={acc.small_size_error:.3f}")


COMMANDS = {
    "table1": cmd_table1,
    "fig11": lambda a: cmd_sweep(a, 64),
    "fig12": cmd_fig12,
    "fig13": cmd_fig13,
    "fig14": lambda a: cmd_sweep(a, 4),
    "fig15": lambda a: cmd_sweep(a, 8, multithreaded=True),
    "fig16": lambda a: cmd_sweep(a, 4, multithreaded=True),
    "fig17": cmd_fig17,
    "table3": cmd_table3,
    "gmon": cmd_gmon,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the CDCS reproduction.",
    )
    parser.add_argument("experiment", choices=sorted(COMMANDS) + ["list"])
    parser.add_argument("--mixes", type=int, default=10,
                        help="random mixes per data point (default 10)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(COMMANDS)))
        return 0
    COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
