"""Command-line entry point: regenerate paper experiments from the shell.

Usage::

    python -m repro table1                 # the 36-tile case study
    python -m repro fig13 --mixes 8        # occupancy sweep
    python -m repro fig11 --jobs 4         # fan mixes out over 4 workers
    python -m repro fig11 --cache-dir .repro-cache   # memoize job results
    python -m repro fig17 --no-cache       # force recomputation
    python -m repro table3                 # reconfiguration runtime
    python -m repro phase_study --mixes 2  # phased workloads vs period
    python -m repro scalability --tiles 16,64,144,256   # mesh-size sweep
    python -m repro list                   # all available experiments

Sweep-shaped experiments submit one job per point through
``repro.runner.ProcessPoolRunner``: ``--jobs N`` parallelizes across N
worker processes (results are bitwise identical to ``--jobs 1``), and the
content-hashed result cache under ``--cache-dir`` makes reruns only execute
changed points.  A progress line on stderr reports jobs done/total and
cache hits.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config import default_config
from repro.experiments import (
    format_series,
    format_table,
    reconfig_trace_jobs,
    run_case_study,
    run_factor_analysis,
    run_monitor_comparison,
    run_phase_study,
    run_scalability,
    run_sweep,
    run_table3,
)
from repro.experiments.scalability import TILE_POINTS, mesh_width
from repro.runner import ProcessPoolRunner, ResultStore, run_jobs
from repro.util.units import mb
from repro.workloads import get_profile

SCHEMES = ("R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS")

#: Default location of the content-hashed result cache.
DEFAULT_CACHE_DIR = ".repro-cache"


def cmd_table1(args) -> None:
    result = run_case_study()
    print(format_table(
        ["Scheme", "omnet", "ilbdc", "milc", "WS"], result.table1(),
        title="Table 1: case-study speedups over S-NUCA",
    ))


def cmd_sweep(args, n_apps: int, multithreaded: bool = False) -> None:
    sweep = run_sweep(
        default_config(), n_apps=n_apps, n_mixes=args.mixes, seed=args.seed,
        multithreaded=multithreaded, runner=args.runner,
    )
    rows = [(s, sweep.gmean_speedup(s), sweep.max_speedup(s)) for s in SCHEMES]
    kind = "8-thread" if multithreaded else "single-threaded"
    print(format_table(
        ["Scheme", "gmean WS", "max WS"], rows,
        title=f"{args.mixes} mixes of {n_apps} {kind} apps",
    ))


def cmd_fig12(args) -> None:
    for n_apps in (64, 4):
        result = run_factor_analysis(
            default_config(), n_apps=n_apps, n_mixes=args.mixes,
            seed=args.seed, runner=args.runner,
        )
        print(format_table(
            ["Variant", "gmean WS"], list(result.gmeans().items()),
            title=f"Fig 12 factor analysis at {n_apps} apps",
        ))


def cmd_fig13(args) -> None:
    rows = []
    for n_apps in (1, 2, 4, 8, 16, 32, 64):
        sweep = run_sweep(default_config(), n_apps=n_apps,
                          n_mixes=args.mixes, seed=args.seed,
                          runner=args.runner)
        rows.append((f"{n_apps}", *(sweep.gmean_speedup(s) for s in SCHEMES)))
    print(format_table(["apps"] + list(SCHEMES), rows,
                       title="Fig 13: gmean WS vs occupancy"))


def cmd_fig17(args) -> None:
    jobs = reconfig_trace_jobs(capacity_scale=16, seed=args.seed)
    for trace in run_jobs(jobs, args.runner):
        print(format_series(
            f"{trace.protocol} (Mcycle, IPC)",
            [(t / 1e6, v) for t, v in
             trace.trace[:: max(len(trace.trace) // 15, 1)]],
            fmt="{:.2f}",
        ))


def cmd_table3(args) -> None:
    rows = run_table3(seed=args.seed, repeats=3)
    print(format_table(
        ["thr/cores", "total Mcycles", "overhead@25ms"],
        [(f"{r.threads}/{r.cores}", r.total_mcycles,
          f"{r.overhead_percent():.3f}%") for r in rows],
        title="Table 3: reconfiguration runtime",
    ))


def cmd_phase_study(args) -> None:
    study = run_phase_study(n_mixes=args.mixes, seed=args.seed,
                            runner=args.runner)
    rows = [
        (f"{period / 1e6:g}M",
         study.mean_gain(period),
         study.mean_phase_changes(period))
        for period in study.periods()
    ]
    print(format_table(
        ["period (cycles)", "adaptive/stale IPC", "phase changes"], rows,
        title=f"Phase study: reconfiguration period vs phase length "
              f"({args.mixes} phased mixes)",
    ))
    period = study.periods()[0]
    trace = study.trace(period, mix_id=0)
    print(format_series(
        f"mix 0 epoch IPC at {period / 1e6:g}M period (Mcycle, IPC)",
        [(t / 1e6, v) for t, v in trace[:: max(len(trace) // 15, 1)]],
        fmt="{:.2f}",
    ))


def cmd_scalability(args) -> None:
    result = run_scalability(tiles=args.tiles, n_mixes=args.mixes,
                             seed=args.seed, runner=args.runner)
    print(format_table(
        ["tiles", "apps", "IPC", "IPC/tile", "hops", "runtime Mcyc",
         "solve ms"],
        result.table_rows(),
        title=f"Scalability: mesh-size sweep at fixed per-tile load "
              f"({args.mixes} mixes/point)",
    ))


def cmd_gmon(args) -> None:
    for acc in run_monitor_comparison(get_profile("astar"), mb(32),
                                      runner=args.runner):
        print(f"{acc.monitor_kind}-{acc.ways}: "
              f"MAE={acc.mean_abs_error:.3f} "
              f"small-size MAE={acc.small_size_error:.3f}")


COMMANDS = {
    "table1": cmd_table1,
    "fig11": lambda a: cmd_sweep(a, 64),
    "fig12": cmd_fig12,
    "fig13": cmd_fig13,
    "fig14": lambda a: cmd_sweep(a, 4),
    "fig15": lambda a: cmd_sweep(a, 8, multithreaded=True),
    "fig16": lambda a: cmd_sweep(a, 4, multithreaded=True),
    "fig17": cmd_fig17,
    "table3": cmd_table3,
    "gmon": cmd_gmon,
    "phase_study": cmd_phase_study,
    "scalability": cmd_scalability,
}


def parse_tiles(text: str) -> tuple[int, ...]:
    """argparse type for ``--tiles``: comma-separated square tile counts."""
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise argparse.ArgumentTypeError(
            "--tiles needs at least one tile count"
        )
    values = []
    for part in parts:
        try:
            count = int(part)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--tiles expects comma-separated integers, got {part!r}"
            ) from None
        try:
            mesh_width(count)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        values.append(count)
    return tuple(values)


def _progress_printer(stream=None):
    """Return a runner progress callback writing a live line to *stream*."""
    stream = stream if stream is not None else sys.stderr

    def show(stats) -> None:
        end = "\n" if stats.completed == stats.submitted else "\r"
        print(
            f"[repro] {stats.completed}/{stats.submitted} jobs done "
            f"({stats.cached} cache hits, {stats.executed} executed)",
            end=end, file=stream, flush=True,
        )

    return show


def build_runner(
    jobs: int = 1,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    no_cache: bool = False,
    quiet: bool = False,
) -> ProcessPoolRunner:
    """Construct the runner the CLI (and tests) hand to experiments."""
    store = None if (no_cache or cache_dir is None) else ResultStore(cache_dir)
    progress = None if quiet else _progress_printer()
    return ProcessPoolRunner(jobs=jobs, store=store, progress=progress)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the CDCS reproduction.",
    )
    parser.add_argument("experiment", choices=sorted(COMMANDS) + ["list"])
    parser.add_argument("--mixes", type=int, default=10,
                        help="random mixes per data point (default 10)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep jobs (default 1; "
                             "results are identical at any N)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="directory of the content-hashed result cache "
                             f"(default {DEFAULT_CACHE_DIR!r})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache: recompute and do "
                             "not persist any job output")
    parser.add_argument("--tiles", type=parse_tiles, default=TILE_POINTS,
                        metavar="N,N,...",
                        help="mesh sizes for the scalability sweep, as "
                             "comma-separated square tile counts "
                             "(default 16,64,144,256)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if not args.no_cache and args.cache_dir:
        cache_path = Path(args.cache_dir)
        if cache_path.exists() and not cache_path.is_dir():
            parser.error(
                f"--cache-dir {args.cache_dir!r} exists and is not a "
                f"directory"
            )
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(COMMANDS)))
        return 0
    args.runner = build_runner(
        jobs=args.jobs, cache_dir=args.cache_dir, no_cache=args.no_cache
    )
    COMMANDS[args.experiment](args)
    stats = args.runner.stats
    if stats.submitted:
        print(f"[repro] total: {stats.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
