"""Command-line entry point: regenerate paper experiments from the shell.

Usage::

    python -m repro list                   # the experiment registry
    python -m repro list --json            # ... machine-readable
    python -m repro run fig11 --param mixes=8    # generic registry form
    python -m repro fig11 --mixes 8        # per-experiment subcommand
    python -m repro fig11 --jobs 4         # fan mixes out over 4 workers
    python -m repro run table1 --format json     # structured export
    python -m repro run fig14 --format csv --out fig14.csv
    python -m repro scalability --tiles 16,64,144,256   # mesh-size sweep

Every experiment is a registered
:class:`~repro.experiments.spec.ExperimentSpec`; the CLI is generated
from the registry, so ``run <name>`` and the per-experiment subcommands
are two spellings of the same path (``--param k=v`` and ``--<k> v`` both
feed the spec's typed parameter schema).  All experiments uniformly
support ``--jobs/--cache-dir/--no-cache/--seed`` plus structured output
via ``--format table|json|csv`` and ``--out FILE``.

Execution goes through :class:`repro.api.Session`: one job per
experiment point, fanned over ``--jobs N`` worker processes (results are
bitwise identical to ``--jobs 1``) and memoized in the content-hashed
result cache under ``--cache-dir``.  A progress line on stderr reports
jobs done/total and cache hits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api import Session
from repro.experiments.results import FORMATS, RunRecord, render
from repro.experiments.spec import all_specs, get_spec, spec_names
from repro.nuca import SCHEMES  # noqa: F401  (re-export for compatibility)
from repro.runner import (
    DEFAULT_CACHE_DIR,
    MegaBatchRunner,
    ProcessPoolRunner,
    ResultStore,
)


def build_parser() -> argparse.ArgumentParser:
    """The registry-generated CLI grammar (also probed by docs-check)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the CDCS reproduction.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep jobs (default 1; "
                             "results are identical at any N)")
    common.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="directory of the content-hashed result cache "
                             f"(default {DEFAULT_CACHE_DIR!r})")
    common.add_argument("--no-cache", action="store_true",
                        help="disable the result cache: recompute and do "
                             "not persist any job output")
    common.add_argument("--seed", type=int, default=None,
                        help="override the experiment's default RNG seed")
    common.add_argument("--format", choices=FORMATS, default="table",
                        dest="format",
                        help="output format (default table)")
    common.add_argument("--out", default=None, metavar="FILE",
                        help="write the rendered output to FILE instead "
                             "of stdout")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    p_list = sub.add_parser(
        "list", parents=[common],
        help="show the experiment registry",
    )
    p_list.add_argument("--json", action="store_true",
                        help="emit the registry as JSON")
    p_run = sub.add_parser(
        "run", parents=[common],
        help="run any registered experiment by name",
    )
    p_run.add_argument("name", choices=spec_names(),
                       help="registered experiment name")
    p_run.add_argument("--param", action="append", default=[],
                       metavar="K=V",
                       help="override one experiment parameter "
                            "(repeatable)")
    p_serve = sub.add_parser(
        "serve",
        help="run the async co-scheduling control plane against a "
             "synthetic tenant fleet and report serving metrics",
    )
    p_serve.add_argument("--chips", type=int, default=4, metavar="N",
                         help="concurrent tenant chips (default 4)")
    p_serve.add_argument("--epochs", type=int, default=6, metavar="N",
                         help="reconfigurations per chip (default 6)")
    p_serve.add_argument("--tiles", type=int, default=16, metavar="N",
                         help="square tile count per chip (default 16)")
    p_serve.add_argument("--dynamism", choices=("stationary", "phased"),
                         default="phased",
                         help="workload arm (default phased)")
    p_serve.add_argument("--strategy", default="incremental",
                         metavar="NAME",
                         help="solve strategy for every chip's warm "
                              "engine: full, incremental, partitioned, "
                              "or hierarchical (default incremental)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker tasks / solve threads (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=32,
                         metavar="N",
                         help="bounded request-queue depth (default 32)")
    p_serve.add_argument("--solve-timeout-s", type=float, default=None,
                         metavar="S",
                         help="per-solve deadline; timed-out chips "
                              "degrade to last-good (default none)")
    p_serve.add_argument("--tenant-rate", type=float, default=None,
                         metavar="R",
                         help="per-tenant token-bucket refill, requests/s "
                              "(default: unlimited)")
    p_serve.add_argument("--tenant-burst", type=float, default=None,
                         metavar="B",
                         help="per-tenant burst size (default: rate)")
    p_serve.add_argument("--seed", type=int, default=42,
                         help="fleet RNG seed (default 42)")
    p_serve.add_argument("--format", choices=FORMATS, default="table",
                         dest="format",
                         help="output format (default table)")
    p_serve.add_argument("--out", default=None, metavar="FILE",
                         help="write the report to FILE instead of stdout")
    for spec in all_specs():
        p_exp = sub.add_parser(
            spec.name, parents=[common],
            help=f"{spec.figure}: {spec.summary}",
        )
        for param in spec.params:
            if param.name == "seed":
                continue  # the common --seed flag covers it
            p_exp.add_argument(
                f"--{param.name.replace('_', '-')}",
                dest=param.name,
                type=param.parser,
                default=param.default,
                help=f"{param.help} (default {param.default!r})",
            )
    return parser


def _progress_printer(stream=None):
    """Return a runner progress callback writing a live line to *stream*."""
    stream = stream if stream is not None else sys.stderr

    def show(stats) -> None:
        end = "\n" if stats.completed == stats.submitted else "\r"
        print(
            f"[repro] {stats.completed}/{stats.submitted} jobs done "
            f"({stats.cached} cache hits, {stats.executed} executed)",
            end=end, file=stream, flush=True,
        )

    return show


def build_runner(
    jobs: int = 1,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    no_cache: bool = False,
    quiet: bool = False,
) -> ProcessPoolRunner:
    """Construct a runner the way the CLI does (kept for tests/tools).

    A :class:`MegaBatchRunner`, so figure sweeps launched through the
    CLI stack compatible jobs into mega-batch kernel passes."""
    store = None if (no_cache or cache_dir is None) else ResultStore(cache_dir)
    progress = None if quiet else _progress_printer()
    return MegaBatchRunner(jobs=jobs, store=store, progress=progress)


def _build_session(args) -> Session:
    cache_dir = None if (args.no_cache or not args.cache_dir) \
        else args.cache_dir
    return Session(
        jobs=args.jobs, cache_dir=cache_dir, progress=_progress_printer()
    )


def _collect_overrides(parser, args) -> dict:
    """Experiment parameter overrides from either CLI spelling."""
    overrides: dict = {}
    if args.command == "run":
        for item in args.param:
            if "=" not in item:
                parser.error(f"--param expects K=V, got {item!r}")
            key, value = item.split("=", 1)
            overrides[key] = value
    else:
        spec = get_spec(args.command)
        for param in spec.params:
            if param.name != "seed":
                overrides[param.name] = getattr(args, param.name)
    if args.seed is not None:
        overrides["seed"] = args.seed
    return overrides


def _emit(record: RunRecord, fmt: str, out: str | None) -> None:
    _write_or_print(render(record, fmt), out, f"{fmt} output")


def _write_or_print(text: str, out: str | None, what: str) -> None:
    if out is None:
        print(text)
    else:
        Path(out).write_text(text + "\n")
        print(f"[repro] wrote {what} to {out}", file=sys.stderr)


def _cmd_list(parser, args) -> int:
    specs = all_specs()
    # `list --format json` and `list --json` are the same spelling; csv
    # has no sensible listing shape.
    if args.format == "csv":
        parser.error("list supports --format table or json, not csv")
    if args.json or args.format == "json":
        text = json.dumps([spec.describe() for spec in specs], indent=2)
        _write_or_print(text, args.out, "registry json")
        return 0
    width = max(len(spec.name) for spec in specs)
    lines = ["available experiments:"]
    for spec in specs:
        params = ", ".join(
            f"{p.name}={p.default!r}" for p in spec.params
        )
        lines.append(f"  {spec.name:<{width}}  {spec.figure}: "
                     f"{spec.summary} [{params}]")
    lines.append("")
    lines.append("run one with: python -m repro run <name> "
                 "[--param k=v ...]")
    _write_or_print("\n".join(lines), args.out, "registry listing")
    return 0


def _cmd_serve(parser, args) -> int:
    """One control-plane session over a synthetic fleet (in-process)."""
    from repro.experiments.results import ResultTable
    from repro.service import LoadSpec, run_load

    try:
        spec = LoadSpec(
            chips=args.chips, epochs=args.epochs, tiles=args.tiles,
            dynamism=args.dynamism, strategy=args.strategy,
            workers=args.workers, queue_limit=args.queue_limit,
            solve_timeout_s=args.solve_timeout_s,
            tenant_rate=args.tenant_rate, tenant_burst=args.tenant_burst,
            seed=args.seed,
        )
    except ValueError as exc:
        parser.error(str(exc))
    report = run_load(spec)
    table = ResultTable.make(
        title=f"Control plane: {spec.chips} chips x {spec.epochs} epochs "
              f"on {spec.tiles} tiles ({spec.strategy}, {spec.workers} "
              f"workers, queue {spec.queue_limit})",
        headers=("chips", "epochs", "tiles", "strategy", "dynamism",
                 "requests", "ok", "degraded", "rejected", "req/s",
                 "p50 ms", "p99 ms"),
        rows=report.table_rows(),
    )
    record = RunRecord(
        experiment="serve", params=report.spec, tables=(table,),
    )
    _emit(record, args.format, args.out)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        # serve is not a registry experiment: no jobs/cache machinery.
        return _cmd_serve(parser, args)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if not args.no_cache and args.cache_dir:
        cache_path = Path(args.cache_dir)
        if cache_path.exists() and not cache_path.is_dir():
            parser.error(
                f"--cache-dir {args.cache_dir!r} exists and is not a "
                f"directory"
            )
    if args.command == "list":
        return _cmd_list(parser, args)
    name = args.name if args.command == "run" else args.command
    overrides = _collect_overrides(parser, args)
    spec = get_spec(name)
    # Validate parameters (and parameter-dependent job construction, e.g.
    # a profile-name lookup) up front, so bad input is a usage error —
    # while genuine runtime failures inside jobs still surface as
    # tracebacks rather than being miscast as CLI mistakes.
    try:
        params = spec.resolve(overrides)
        spec.build_jobs(params)
    except (ValueError, KeyError, argparse.ArgumentTypeError) as exc:
        parser.error(str(exc))
    session = _build_session(args)
    record = session.run(name, **params)
    _emit(record, args.format, args.out)
    stats = session.stats
    if stats.submitted:
        print(f"[repro] total: {stats.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
