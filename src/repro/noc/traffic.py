"""NoC traffic accounting.

Fig 11d/14/15 break network traffic into L2<->LLC, LLC<->Mem and Other
flit-hops.  This module centralizes message costing: every logical message
(request, data response, writeback, move, invalidation) is converted into
flits x hops and accumulated per class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.config import NocConfig


class TrafficClass(Enum):
    """Paper's Fig 11d traffic categories."""

    L2_LLC = "L2-LLC"
    LLC_MEM = "LLC-Mem"
    OTHER = "Other"


@dataclass
class TrafficCounter:
    """Accumulates flit-hops per traffic class."""

    noc: NocConfig = field(default_factory=NocConfig)
    flit_hops: dict[TrafficClass, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in TrafficClass}
    )

    def add_message(
        self,
        cls: TrafficClass,
        hops: float,
        payload_bytes: int = 0,
        count: float = 1.0,
    ) -> None:
        """Record *count* messages of *payload_bytes* travelling *hops*."""
        flits = self.noc.flits_for_bytes(payload_bytes)
        self.flit_hops[cls] += flits * hops * count

    def add_request_response(
        self,
        cls: TrafficClass,
        hops: float,
        response_bytes: int,
        count: float = 1.0,
    ) -> None:
        """A request (header-only) plus a response carrying data, both over
        *hops* — the common LLC access pattern."""
        self.add_message(cls, hops, payload_bytes=0, count=count)
        self.add_message(cls, hops, payload_bytes=response_bytes, count=count)

    def total(self) -> float:
        return sum(self.flit_hops.values())

    def breakdown(self) -> dict[str, float]:
        return {cls.value: hops for cls, hops in self.flit_hops.items()}

    def merge(self, other: "TrafficCounter") -> None:
        for cls, hops in other.flit_hops.items():
            self.flit_hops[cls] += hops

    def reset(self) -> None:
        for cls in self.flit_hops:
            self.flit_hops[cls] = 0.0
