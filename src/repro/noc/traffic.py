"""NoC traffic accounting.

Fig 11d/14/15 break network traffic into L2<->LLC, LLC<->Mem and Other
flit-hops.  This module centralizes message costing: every logical message
(request, data response, writeback, move, invalidation) is converted into
flits x hops and accumulated per class.

Shape conventions
-----------------
The batched entry points take parallel ``(M,)`` ``float64`` arrays — one
entry per *message population* (e.g. one thread's misses per epoch), not
per message:

* ``hops`` — network distance each population travels (fractional hop
  counts are fine: they are expectations over a placement's access
  spread, typically rows of a precomputed mesh distance matrix from
  ``repro.geometry``);
* ``counts`` — how many messages are in each population;
* ``payload_bytes`` — scalar payload shared by the batch (one flit class
  per call keeps the flit conversion a single multiply).

``add_messages`` reduces ``flits * hops * counts`` with one dot product
per call; the per-message scalar API remains for the event-driven
simulator, and both accumulate into the same per-class tallies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.config import NocConfig


class TrafficClass(Enum):
    """Paper's Fig 11d traffic categories."""

    L2_LLC = "L2-LLC"
    LLC_MEM = "LLC-Mem"
    OTHER = "Other"


@dataclass
class TrafficCounter:
    """Accumulates flit-hops per traffic class."""

    noc: NocConfig = field(default_factory=NocConfig)
    flit_hops: dict[TrafficClass, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in TrafficClass}
    )

    def add_message(
        self,
        cls: TrafficClass,
        hops: float,
        payload_bytes: int = 0,
        count: float = 1.0,
    ) -> None:
        """Record *count* messages of *payload_bytes* travelling *hops*."""
        flits = self.noc.flits_for_bytes(payload_bytes)
        self.flit_hops[cls] += flits * hops * count

    def add_request_response(
        self,
        cls: TrafficClass,
        hops: float,
        response_bytes: int,
        count: float = 1.0,
    ) -> None:
        """A request (header-only) plus a response carrying data, both over
        *hops* — the common LLC access pattern."""
        self.add_message(cls, hops, payload_bytes=0, count=count)
        self.add_message(cls, hops, payload_bytes=response_bytes, count=count)

    # -- batched accounting --------------------------------------------------

    def add_flit_hops(self, cls: TrafficClass, flit_hops: float) -> None:
        """Accumulate *already-priced* flit-hops (no flit conversion).

        For callers whose quantities were costed elsewhere — e.g. the
        analytic engine's per-thread ``traffic_pki`` values, which already
        include the data-flit multiplication.  ``add_message(s)`` would
        re-apply a header-flit factor to them.
        """
        if flit_hops < 0:
            raise ValueError("flit-hops cannot be negative")
        self.flit_hops[cls] += flit_hops

    def add_messages(
        self,
        cls: TrafficClass,
        hops: np.ndarray,
        payload_bytes: int = 0,
        counts: np.ndarray | float = 1.0,
    ) -> None:
        """Record whole message populations in one array reduction.

        *hops* is ``(M,)``; *counts* is ``(M,)`` or a scalar applied to
        every population.  Equivalent to M ``add_message`` calls, priced
        with a single ``flits * (hops . counts)`` dot product.
        """
        hops = np.asarray(hops, dtype=np.float64)
        flits = self.noc.flits_for_bytes(payload_bytes)
        if np.ndim(counts) == 0:
            total = float(hops.sum()) * float(counts)
        else:
            counts = np.asarray(counts, dtype=np.float64)
            if counts.shape != hops.shape:
                raise ValueError(
                    f"counts shape {counts.shape} != hops shape {hops.shape}"
                )
            total = float(hops @ counts)
        self.flit_hops[cls] += flits * total

    def add_request_responses(
        self,
        cls: TrafficClass,
        hops: np.ndarray,
        response_bytes: int,
        counts: np.ndarray | float = 1.0,
    ) -> None:
        """Batched :meth:`add_request_response`: header + data response for
        every population in two array reductions."""
        self.add_messages(cls, hops, payload_bytes=0, counts=counts)
        self.add_messages(cls, hops, payload_bytes=response_bytes, counts=counts)

    def total(self) -> float:
        return sum(self.flit_hops.values())

    def breakdown(self) -> dict[str, float]:
        return {cls.value: hops for cls, hops in self.flit_hops.items()}

    def merge(self, other: "TrafficCounter") -> None:
        for cls, hops in other.flit_hops.items():
            self.flit_hops[cls] += hops

    def reset(self) -> None:
        for cls in self.flit_hops:
            self.flit_hops[cls] = 0.0
