"""On-chip network: zero-load latency model and traffic-class accounting."""

from repro.noc.router import NocModel
from repro.noc.traffic import TrafficClass, TrafficCounter

__all__ = ["NocModel", "TrafficClass", "TrafficCounter"]
