"""NoC latency model: dimension-ordered routing over the chip topology.

The trace simulator and the analytic model both charge network latency as
``hops x (router + link)`` cycles (Table 2: 3-cycle routers, 1-cycle links).
We model zero-load latency only: the paper's evaluation is capacity- and
placement-dominated, and its NoC (128-bit links) runs far from saturation
for these workloads, so queueing in the mesh is second-order (docs/ARCHITECTURE.md).
"""

from __future__ import annotations

from repro.config import NocConfig
from repro.geometry.mesh import Topology


class NocModel:
    """Latency and path helper bound to a topology + NoC timing."""

    def __init__(self, topology: Topology, config: NocConfig | None = None):
        self.topology = topology
        self.config = config or NocConfig()

    def latency(self, src: int, dst: int) -> int:
        """One-way zero-load latency in cycles between two tiles.

        Same-tile messages skip the network entirely (bank and core share
        the tile), which is what makes R-NUCA's local-bank policy fast.
        """
        hops = self.topology.distance(src, dst)
        return hops * self.config.hop_latency

    def round_trip(self, src: int, dst: int) -> int:
        return 2 * self.latency(src, dst)

    def hops(self, src: int, dst: int) -> int:
        return self.topology.distance(src, dst)

    def mean_latency_to_all(self, src: int) -> float:
        """Average one-way latency from *src* to a uniformly random tile
        (the S-NUCA case: lines interleaved over all banks)."""
        return self.topology.mean_distance(src) * self.config.hop_latency
